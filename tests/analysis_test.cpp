// Tests for the analysis extensions: QODG slack / downstream-delay and the
// QSPR critical-path priority scheduler.
#include <gtest/gtest.h>

#include "benchgen/suite.h"
#include "fabric/params.h"
#include "qodg/qodg.h"
#include "qspr/qspr.h"
#include "synth/ft_synth.h"
#include "util/error.h"
#include "util/rng.h"

namespace lc = leqa::circuit;
namespace lq = leqa::qodg;
namespace lqs = leqa::qspr;

// ------------------------------------------------------- downstream delay --

TEST(DownstreamDelay, ChainAccumulates) {
    lc::Circuit circ(1);
    circ.h(0).t(0).h(0);
    const lq::Qodg graph(circ);
    const auto delays = graph.node_delays([](lc::GateKind) { return 2.0; });
    const auto downstream = graph.downstream_delay(delays);
    EXPECT_DOUBLE_EQ(downstream[graph.end()], 0.0);
    EXPECT_DOUBLE_EQ(downstream[graph.node_of_gate(2)], 2.0);
    EXPECT_DOUBLE_EQ(downstream[graph.node_of_gate(0)], 6.0);
    EXPECT_DOUBLE_EQ(downstream[graph.start()], 6.0);
}

TEST(DownstreamDelay, ConsistentWithForwardLongestPath) {
    leqa::util::Rng rng(5);
    lc::Circuit circ(5);
    for (int g = 0; g < 60; ++g) {
        const auto picks = rng.sample_without_replacement(5, 2);
        if (rng.chance(0.5)) {
            circ.cnot(static_cast<lc::Qubit>(picks[0]), static_cast<lc::Qubit>(picks[1]));
        } else {
            circ.h(static_cast<lc::Qubit>(picks[0]));
        }
    }
    const lq::Qodg graph(circ);
    const auto delays = graph.node_delays([](lc::GateKind) { return 3.0; });
    const auto lp = graph.longest_path(delays);
    const auto downstream = graph.downstream_delay(delays);
    // downstream(start) equals the full critical length (start delay is 0).
    EXPECT_NEAR(downstream[graph.start()], lp.length, 1e-9);
}

// ------------------------------------------------------------------ slack --

TEST(Slack, DiamondHasSlackOnLightBranch) {
    lc::Circuit circ(2);
    circ.cnot(0, 1).h(0).h(1).cnot(0, 1);
    const lq::Qodg graph(circ);
    auto delays = graph.node_delays([](lc::GateKind) { return 1.0; });
    delays[graph.node_of_gate(1)] = 10.0; // heavy h(0) branch
    const auto analysis = graph.slack_analysis(delays);
    EXPECT_DOUBLE_EQ(analysis.critical_length, 1.0 + 10.0 + 1.0);
    EXPECT_DOUBLE_EQ(analysis.slack[graph.node_of_gate(1)], 0.0); // critical
    EXPECT_DOUBLE_EQ(analysis.slack[graph.node_of_gate(2)], 9.0); // light branch
    EXPECT_DOUBLE_EQ(analysis.slack[graph.start()], 0.0);
    EXPECT_DOUBLE_EQ(analysis.slack[graph.end()], 0.0);
}

TEST(Slack, CriticalPathNodesHaveZeroSlack) {
    leqa::util::Rng rng(9);
    lc::Circuit circ(6);
    for (int g = 0; g < 80; ++g) {
        const auto picks = rng.sample_without_replacement(6, 2);
        circ.cnot(static_cast<lc::Qubit>(picks[0]), static_cast<lc::Qubit>(picks[1]));
    }
    const lq::Qodg graph(circ);
    auto delays = graph.node_delays([](lc::GateKind) { return 1.0; });
    for (auto& d : delays) d = 1.0 + rng.uniform() * 5.0;
    delays[graph.start()] = 0.0;
    delays[graph.end()] = 0.0;
    const auto lp = graph.longest_path(delays);
    const auto analysis = graph.slack_analysis(delays);
    EXPECT_DOUBLE_EQ(analysis.critical_length, lp.length);
    for (const auto node : graph.critical_path(lp)) {
        EXPECT_NEAR(analysis.slack[node], 0.0, 1e-9);
    }
    // Slack is bounded by the critical length.
    for (const double s : analysis.slack) {
        EXPECT_GE(s, 0.0);
        EXPECT_LE(s, lp.length + 1e-9);
    }
    EXPECT_GE(analysis.zero_slack_nodes, graph.critical_path(lp).size());
}

// ------------------------------------------------------ priority schedule --

TEST(PrioritySchedule, PolicyNamesRoundTrip) {
    for (const auto policy : {lqs::SchedulePolicy::ProgramOrder,
                              lqs::SchedulePolicy::CriticalPathPriority}) {
        EXPECT_EQ(lqs::parse_schedule_policy(lqs::schedule_policy_name(policy)), policy);
    }
    EXPECT_THROW((void)lqs::parse_schedule_policy("bogus"), leqa::util::InputError);
}

namespace {
leqa::fabric::PhysicalParams small_params() {
    leqa::fabric::PhysicalParams params;
    params.width = 10;
    params.height = 10;
    return params;
}

lc::Circuit random_ft(std::size_t qubits, int gates, std::uint64_t seed) {
    leqa::util::Rng rng(seed);
    lc::Circuit circ(qubits);
    for (int g = 0; g < gates; ++g) {
        const auto picks = rng.sample_without_replacement(qubits, 2);
        if (rng.chance(0.6)) {
            circ.cnot(static_cast<lc::Qubit>(picks[0]), static_cast<lc::Qubit>(picks[1]));
        } else {
            circ.t(static_cast<lc::Qubit>(picks[0]));
        }
    }
    return circ;
}
} // namespace

TEST(PrioritySchedule, ExecutesEveryGateExactlyOnce) {
    const auto circ = random_ft(8, 120, 3);
    lqs::QsprOptions options;
    options.schedule = lqs::SchedulePolicy::CriticalPathPriority;
    options.collect_schedule = true;
    const lqs::QsprMapper mapper(small_params(), options);
    const auto result = mapper.map(circ);
    ASSERT_EQ(result.schedule.size(), circ.size());
    std::vector<bool> seen(circ.size(), false);
    for (const auto& op : result.schedule) {
        ASSERT_LT(op.gate_index, circ.size());
        EXPECT_FALSE(seen[op.gate_index]) << "gate executed twice";
        seen[op.gate_index] = true;
    }
}

TEST(PrioritySchedule, RespectsDependencies) {
    const auto circ = random_ft(6, 100, 7);
    lqs::QsprOptions options;
    options.schedule = lqs::SchedulePolicy::CriticalPathPriority;
    options.collect_schedule = true;
    const lqs::QsprMapper mapper(small_params(), options);
    const auto result = mapper.map(circ);

    // Reconstruct per-qubit op order from the schedule and compare with
    // program order (the dependency order along each qubit's chain).
    std::vector<double> last_finish(6, 0.0);
    std::vector<std::size_t> issue_of_gate(circ.size());
    for (std::size_t i = 0; i < result.schedule.size(); ++i) {
        issue_of_gate[result.schedule[i].gate_index] = i;
    }
    // For each pair of gates sharing a qubit, program order must imply
    // schedule-time order.
    for (std::size_t a = 0; a < circ.size(); ++a) {
        for (std::size_t b = a + 1; b < circ.size(); ++b) {
            const auto qa = circ.gate(a).qubits();
            const auto qb = circ.gate(b).qubits();
            bool shares = false;
            for (const auto q : qa) {
                for (const auto p : qb) {
                    if (q == p) shares = true;
                }
            }
            if (!shares) continue;
            const auto& op_a = result.schedule[issue_of_gate[a]];
            const auto& op_b = result.schedule[issue_of_gate[b]];
            EXPECT_LE(op_a.finish_us, op_b.start_us + 1e-6)
                << "dependent gates " << a << " -> " << b << " overlap";
        }
    }
}

TEST(PrioritySchedule, MatchesProgramOrderLatencyOnSerialCircuit) {
    // A fully serial circuit has a unique schedule; both policies agree.
    lc::Circuit circ(1);
    for (int i = 0; i < 20; ++i) circ.t(0);
    lqs::QsprOptions priority;
    priority.schedule = lqs::SchedulePolicy::CriticalPathPriority;
    const auto a = lqs::QsprMapper(small_params()).map(circ);
    const auto b = lqs::QsprMapper(small_params(), priority).map(circ);
    EXPECT_DOUBLE_EQ(a.latency_us, b.latency_us);
}

TEST(PrioritySchedule, DeterministicAndComparableToProgramOrder) {
    const auto ft = leqa::synth::ft_synthesize(leqa::benchgen::ham3()).circuit;
    lqs::QsprOptions priority;
    priority.schedule = lqs::SchedulePolicy::CriticalPathPriority;
    const leqa::fabric::PhysicalParams params; // 60x60
    const auto a = lqs::QsprMapper(params, priority).map(ft);
    const auto b = lqs::QsprMapper(params, priority).map(ft);
    EXPECT_DOUBLE_EQ(a.latency_us, b.latency_us);
    const auto program = lqs::QsprMapper(params).map(ft);
    // Same circuit, same fabric: latencies must be within a small factor
    // (the policies reorder congestion, not the dependency structure).
    EXPECT_NEAR(a.latency_us / program.latency_us, 1.0, 0.25);
}

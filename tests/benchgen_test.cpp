// Tests for the benchmark generators: GF(2^n) multipliers (functional and
// count-exact), VBE adders (functional), surrogates (count-exact), and the
// paper suite table.
#include <gtest/gtest.h>

#include "benchgen/adders.h"
#include "benchgen/gf2_mult.h"
#include "benchgen/suite.h"
#include "benchgen/surrogate.h"
#include "mathx/gf2poly.h"
#include "sim/classical.h"
#include "synth/ft_synth.h"
#include "util/error.h"
#include "util/rng.h"

namespace lb = leqa::benchgen;
namespace lc = leqa::circuit;
namespace lm = leqa::mathx;
namespace ls = leqa::sim;
using leqa::util::InputError;

// ---------------------------------------------------------------- gf2poly --

TEST(Gf2Poly, BasicArithmetic) {
    const auto p = lm::Gf2Poly::from_exponents({3, 1, 0}); // x^3 + x + 1
    EXPECT_EQ(p.degree(), 3);
    EXPECT_TRUE(p.coeff(0));
    EXPECT_FALSE(p.coeff(2));
    EXPECT_EQ(p.to_string(), "x^3 + x + 1");

    auto q = lm::Gf2Poly::monomial(1);
    q ^= lm::Gf2Poly::monomial(1);
    EXPECT_TRUE(q.is_zero());
    EXPECT_EQ(q.degree(), -1);
}

TEST(Gf2Poly, ShiftAndMod) {
    const auto p = lm::Gf2Poly::from_exponents({3, 1, 0});
    const auto x4 = lm::Gf2Poly::monomial(4);
    // x^4 mod (x^3+x+1) = x^2 + x.
    EXPECT_EQ(x4.mod(p), lm::Gf2Poly::from_exponents({2, 1}));
    EXPECT_EQ(lm::Gf2Poly::monomial(2).shifted(3), lm::Gf2Poly::monomial(5));
}

TEST(Gf2Poly, MulmodAgainstHand) {
    const auto p = lm::Gf2Poly::from_exponents({3, 1, 0});
    // In GF(8) with x^3 = x+1:  x^2 * x^2 = x^4 = x^2 + x.
    const auto x2 = lm::Gf2Poly::monomial(2);
    EXPECT_EQ(lm::Gf2Poly::mulmod(x2, x2, p), lm::Gf2Poly::from_exponents({2, 1}));
}

TEST(Gf2Poly, GcdBasics) {
    const auto a = lm::Gf2Poly::from_exponents({2});    // x^2
    const auto b = lm::Gf2Poly::from_exponents({1});    // x
    EXPECT_EQ(lm::Gf2Poly::gcd(a, b), lm::Gf2Poly::monomial(1));
}

TEST(Gf2Poly, KnownIrreducibles) {
    EXPECT_TRUE(lm::is_irreducible(lm::Gf2Poly::from_exponents({3, 1, 0})));
    EXPECT_TRUE(lm::is_irreducible(lm::Gf2Poly::from_exponents({8, 4, 3, 1, 0}))); // AES
    EXPECT_FALSE(lm::is_irreducible(lm::Gf2Poly::from_exponents({4, 2, 0}))); // (x^2+x+1)^2
    EXPECT_FALSE(lm::is_irreducible(lm::Gf2Poly::from_exponents({3, 0})));    // x^3+1
    EXPECT_FALSE(lm::is_irreducible(lm::Gf2Poly::from_exponents({3, 1})));    // divisible by x
}

TEST(Gf2Poly, TrinomialSearch) {
    // Degree 20 has the classic trinomial x^20 + x^3 + 1.
    const auto t20 = lm::find_irreducible_trinomial(20);
    ASSERT_TRUE(t20.has_value());
    EXPECT_EQ(*t20, 3);
    // Degrees that are multiples of 8 have no irreducible trinomial.
    EXPECT_FALSE(lm::find_irreducible_trinomial(16).has_value());
    EXPECT_FALSE(lm::find_irreducible_trinomial(64).has_value());
}

TEST(Gf2Poly, PentanomialSearchFindsIrreducible) {
    for (const int n : {16, 19, 50}) {
        const auto penta = lm::find_irreducible_pentanomial(n);
        ASSERT_TRUE(penta.has_value()) << n;
        const auto& t = *penta;
        EXPECT_TRUE(lm::is_irreducible(
            lm::Gf2Poly::from_exponents({n, t[0], t[1], t[2], 0})));
    }
}

TEST(Gf2Poly, MiddleTermsCacheAndForms) {
    const auto tri = lm::irreducible_middle_terms(20, false);
    EXPECT_EQ(tri.size(), 1u);
    const auto penta = lm::irreducible_middle_terms(20, true);
    EXPECT_EQ(penta.size(), 3u);
    // Cached second call must agree.
    EXPECT_EQ(lm::irreducible_middle_terms(20, true), penta);
}

// --------------------------------------------------------------- gf2 mult --

TEST(Gf2Mult, CountsMatchClosedForm) {
    for (const int n : {4, 8, 16}) {
        lb::Gf2MultSpec spec;
        spec.n = n;
        spec.form = lb::Gf2PolyForm::Auto;
        const auto circ = lb::gf2_mult(spec);
        EXPECT_EQ(circ.num_qubits(), static_cast<std::size_t>(3 * n));
        const auto counts = circ.counts();
        EXPECT_EQ(counts.of(lc::GateKind::Toffoli), static_cast<std::size_t>(n) * n);
    }
}

TEST(Gf2Mult, PaperOpCountsExact) {
    // After FT synthesis the suite's gf2 entries must match Table 3 exactly.
    struct Case { int n; std::size_t middle; std::size_t ops; };
    const Case cases[] = {
        {16, 3, 3885}, {18, 3, 4911}, {19, 3, 5469}, {20, 1, 6019},
        {50, 3, 37647}, {64, 3, 61629}, {100, 3, 150297}, {128, 3, 246141},
        {256, 3, 983805},
    };
    for (const auto& c : cases) {
        EXPECT_EQ(lb::gf2_mult_ft_op_count(c.n, c.middle), c.ops) << "n=" << c.n;
    }
}

TEST(Gf2Mult, FunctionalOnRandomInputs) {
    leqa::util::Rng rng(2024);
    for (const int n : {4, 6, 8}) {
        lb::Gf2MultSpec spec;
        spec.n = n;
        spec.form = lb::Gf2PolyForm::Auto;
        const auto circ = lb::gf2_mult(spec);
        for (int trial = 0; trial < 20; ++trial) {
            const std::uint64_t a = rng.next() & ((1ULL << n) - 1);
            const std::uint64_t b = rng.next() & ((1ULL << n) - 1);
            ls::BasisState state(circ.num_qubits());
            state.set_slice(0, n, a);
            state.set_slice(static_cast<lc::Qubit>(n), n, b);
            ls::run_classical(circ, state);
            // a register preserved.
            EXPECT_EQ(state.slice(0, n), a);
            // c register holds the modular product.
            EXPECT_EQ(state.slice(static_cast<lc::Qubit>(2 * n), n),
                      lb::gf2_mult_reference(n, spec.form, a, b))
                << "n=" << n << " a=" << a << " b=" << b;
            // b register holds the documented residue b * x^(n-1) mod p,
            // cyclically relabeled: physical wire j carries coefficient
            // (j + n - 1) mod n (the n-1 gate-free rotations).
            const std::uint64_t residue = lb::gf2_mult_b_residue(n, spec.form, b);
            std::uint64_t physical = 0;
            for (int j = 0; j < n; ++j) {
                if ((residue >> ((j + n - 1) % n)) & 1ULL) physical |= 1ULL << j;
            }
            EXPECT_EQ(state.slice(static_cast<lc::Qubit>(n), n), physical);
        }
    }
}

TEST(Gf2Mult, AccumulatesIntoC) {
    // c starts non-zero: result must be c0 XOR a*b (the circuit adds).
    const int n = 4;
    lb::Gf2MultSpec spec;
    spec.n = n;
    spec.form = lb::Gf2PolyForm::Auto;
    const auto circ = lb::gf2_mult(spec);
    ls::BasisState state(circ.num_qubits());
    state.set_slice(0, n, 0b0111);
    state.set_slice(n, n, 0b1010);
    state.set_slice(2 * n, n, 0b1111);
    ls::run_classical(circ, state);
    EXPECT_EQ(state.slice(2 * n, n),
              0b1111ULL ^ lb::gf2_mult_reference(n, spec.form, 0b0111, 0b1010));
}

TEST(Gf2Mult, TrinomialFormRejectsImpossibleDegrees) {
    lb::Gf2MultSpec spec;
    spec.n = 16; // no irreducible trinomial of degree 16
    spec.form = lb::Gf2PolyForm::Trinomial;
    EXPECT_THROW((void)lb::gf2_mult(spec), InputError);
}

// ------------------------------------------------------------------ adder --

TEST(VbeAdder, FunctionalOnAllSmallInputs) {
    for (const int n : {1, 2, 3, 4}) {
        const auto circ = lb::vbe_adder(n);
        EXPECT_EQ(circ.num_qubits(), static_cast<std::size_t>(3 * n));
        const std::uint64_t limit = 1ULL << n;
        for (std::uint64_t a = 0; a < limit; ++a) {
            for (std::uint64_t b = 0; b < limit; ++b) {
                ls::BasisState state(circ.num_qubits());
                state.set_slice(0, n, a);
                state.set_slice(static_cast<lc::Qubit>(n), n, b);
                ls::run_classical(circ, state);
                EXPECT_EQ(state.slice(0, n), a) << "a must be preserved";
                EXPECT_EQ(state.slice(static_cast<lc::Qubit>(n), n), (a + b) % limit)
                    << "n=" << n << " a=" << a << " b=" << b;
                EXPECT_EQ(state.slice(static_cast<lc::Qubit>(2 * n), n), 0u)
                    << "carries must be restored";
            }
        }
    }
}

TEST(VbeAdder, FunctionalRandomWide) {
    leqa::util::Rng rng(31415);
    const int n = 16;
    const auto circ = lb::vbe_adder(n);
    for (int trial = 0; trial < 30; ++trial) {
        const std::uint64_t a = rng.next() & 0xFFFF;
        const std::uint64_t b = rng.next() & 0xFFFF;
        ls::BasisState state(circ.num_qubits());
        state.set_slice(0, n, a);
        state.set_slice(n, n, b);
        ls::run_classical(circ, state);
        EXPECT_EQ(state.slice(n, n), (a + b) & 0xFFFF);
        EXPECT_EQ(state.slice(2 * n, n), 0u);
    }
}

TEST(VbeAdder, CountsMatchClosedForm) {
    for (const int n : {2, 8, 20}) {
        const auto circ = lb::vbe_adder(n);
        const auto counts = circ.counts();
        const auto expected = lb::vbe_adder_counts(n);
        EXPECT_EQ(counts.of(lc::GateKind::Toffoli), expected.toffolis);
        EXPECT_EQ(counts.of(lc::GateKind::Cnot), expected.cnots);
    }
}

// -------------------------------------------------------------- surrogate --

TEST(Surrogate, HitsExactTargets) {
    lb::SurrogateSpec spec;
    spec.name = "hwb15ps";
    spec.base_qubits = 15;
    spec.target_qubits = 47;
    spec.target_ft_ops = 3885;
    spec.seed = 7;
    const auto circ = lb::surrogate_benchmark(spec);
    const auto ft = leqa::synth::ft_synthesize(circ);
    EXPECT_EQ(ft.circuit.num_qubits(), 47u);
    EXPECT_EQ(ft.circuit.size(), 3885u);
    EXPECT_TRUE(ft.circuit.is_ft());
}

TEST(Surrogate, DeterministicPerSeed) {
    lb::SurrogateSpec spec;
    spec.name = "s";
    spec.base_qubits = 20;
    spec.target_qubits = 83;
    spec.target_ft_ops = 6395;
    const auto a = lb::surrogate_benchmark(spec);
    const auto b = lb::surrogate_benchmark(spec);
    EXPECT_TRUE(a.same_structure(b));
    spec.seed = 99;
    const auto c = lb::surrogate_benchmark(spec);
    EXPECT_FALSE(a.same_structure(c));
}

TEST(Surrogate, RejectsInfeasibleTargets) {
    lb::SurrogateSpec spec;
    spec.name = "bad";
    spec.base_qubits = 20;
    spec.target_qubits = 10; // below base
    spec.target_ft_ops = 100;
    EXPECT_THROW((void)lb::surrogate_benchmark(spec), InputError);

    spec.target_qubits = 200;
    spec.target_ft_ops = 10; // cannot even pay for the ancilla chains
    EXPECT_THROW((void)lb::surrogate_benchmark(spec), InputError);
}

// ------------------------------------------------------------------ suite --

TEST(Suite, HasEighteenEntriesInPaperOrder) {
    const auto& suite = lb::paper_suite();
    ASSERT_EQ(suite.size(), 18u);
    EXPECT_EQ(suite.front().name, "8bitadder");
    EXPECT_EQ(suite.back().name, "gf2^256mult");
    // Table 3 is (approximately) sorted by operation count; the paper
    // itself has two near-ties out of order (hwb16ps, mod1048576adder).
    for (std::size_t i = 0; i + 1 < suite.size(); ++i) {
        EXPECT_LE(suite[i].paper_ops, suite[i + 1].paper_ops + 1000) << suite[i].name;
    }
}

TEST(Suite, LookupAndValidation) {
    EXPECT_TRUE(lb::has_benchmark("gf2^16mult"));
    EXPECT_FALSE(lb::has_benchmark("nope"));
    EXPECT_EQ(lb::find_benchmark("ham15").paper_qubits, 146u);
    EXPECT_THROW((void)lb::find_benchmark("nope"), InputError);
}

TEST(Suite, PaperErrorStatisticsMatchAbstract) {
    // The paper reports 2.11% average and < 9% maximum error.
    const auto& suite = lb::paper_suite();
    double total = 0.0;
    double max_error = 0.0;
    for (const auto& b : suite) {
        total += b.paper_error_pct;
        max_error = std::max(max_error, b.paper_error_pct);
    }
    EXPECT_NEAR(total / static_cast<double>(suite.size()), 2.11, 0.01);
    EXPECT_LT(max_error, 9.0);
}

TEST(Suite, GeneratedCountsMatchPaperForExactFamilies) {
    // gf2 multipliers and surrogates must reproduce the published counts
    // exactly; the adder is constructive (counts differ, documented).
    for (const auto& b : lb::paper_suite()) {
        if (b.paper_ops > 50000) continue; // keep the test fast; big sizes
                                           // covered by closed-form test
        const auto ft = lb::make_ft_benchmark(b.name);
        if (b.kind == lb::BenchmarkKind::Adder) {
            EXPECT_EQ(ft.circuit.num_qubits(), b.paper_qubits) << b.name;
            continue;
        }
        EXPECT_EQ(ft.circuit.num_qubits(), b.paper_qubits) << b.name;
        EXPECT_EQ(ft.circuit.size(), b.paper_ops) << b.name;
    }
}

TEST(Suite, Ham3MatchesFigure2) {
    const auto circ = lb::ham3();
    EXPECT_EQ(circ.num_qubits(), 3u);
    const auto ft = leqa::synth::ft_synthesize(circ);
    EXPECT_EQ(ft.circuit.size(), 19u); // the 19 numbered ops of Figure 2(b)
    EXPECT_EQ(ft.circuit.num_qubits(), 3u);
    EXPECT_TRUE(ft.circuit.is_ft());
}

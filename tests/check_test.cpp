// The contract layer (util/check.h) and the structural validators it
// consumes.  Three concerns:
//
//   1. macro semantics — LEQA_CHECK always throws InternalError through the
//      default handler, the handler is swappable (death-test / fuzzer
//      hook), and LEQA_DCHECK evaluates its condition exactly
//      LEQA_DCHECK_ENABLED times (i.e. *never* in Release: the side-effect
//      probe compiles in both configurations and asserts the count);
//   2. validators catch deliberately corrupted structures — a CSR with an
//      out-of-bounds edge, a cyclic digraph, a coverage histogram losing
//      probability mass, an incremental timer with a poisoned arrival;
//   3. validators are clean on everything the real constructors build.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "benchgen/suite.h"
#include "core/placed.h"
#include "fabric/geometry.h"
#include "fabric/topology.h"
#include "graph/csr.h"
#include "pipeline/pipeline.h"
#include "qodg/qodg.h"
#include "qspr/placement.h"
#include "synth/ft_synth.h"
#include "util/check.h"
#include "util/error.h"

namespace lu = leqa::util;
namespace lg = leqa::graph;
namespace lf = leqa::fabric;

namespace {

// --- macro semantics --------------------------------------------------------

TEST(Check, PassingCheckIsSilent) {
    EXPECT_NO_THROW(LEQA_CHECK(1 + 1 == 2, "arithmetic"));
}

TEST(Check, FailingCheckThrowsInternalError) {
    try {
        LEQA_CHECK(false, "deliberate failure");
        FAIL() << "LEQA_CHECK(false) did not throw";
    } catch (const lu::InternalError& e) {
        EXPECT_NE(std::string(e.what()).find("internal check failed"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("deliberate failure"),
                  std::string::npos)
            << e.what();
    }
}

int g_handler_hits = 0;

[[noreturn]] void counting_handler(const char* expression, const char* file,
                                   int line, const std::string& message) {
    ++g_handler_hits;
    throw lu::InternalError(std::string("custom: ") + expression + " @ " + file +
                            ":" + std::to_string(line) + ": " + message);
}

TEST(Check, FailHandlerIsSwappable) {
    g_handler_hits = 0;
    lu::CheckFailHandler previous = lu::set_check_fail_handler(&counting_handler);
    try {
        EXPECT_THROW(LEQA_CHECK(false, "routed"), lu::InternalError);
        EXPECT_EQ(g_handler_hits, 1);
    } catch (...) {
        (void)lu::set_check_fail_handler(previous);
        throw;
    }
    (void)lu::set_check_fail_handler(previous);

    // nullptr restores the default (throwing) handler.
    (void)lu::set_check_fail_handler(nullptr);
    EXPECT_THROW(LEQA_CHECK(false, "default again"), lu::InternalError);
    EXPECT_EQ(g_handler_hits, 1);
}

TEST(Check, DcheckEvaluatesConditionOnlyWhenEnabled) {
    // The probe compiles identically in Debug and Release; the counter
    // records whether the condition ever ran.  In Release (NDEBUG, no
    // LEQA_FORCE_DCHECK) the macro must expand to zero evaluations.
    int evaluations = 0;
    const auto probe = [&evaluations] {
        ++evaluations;
        return true;
    };
    LEQA_DCHECK(probe(), "side-effect probe");
    EXPECT_EQ(evaluations, LEQA_DCHECK_ENABLED);

    std::string validator_calls;
    const auto validator = [&validator_calls] {
        validator_calls += "x";
        return std::string();
    };
    LEQA_DCHECK_OK(validator());
    EXPECT_EQ(validator_calls.size(), static_cast<std::size_t>(LEQA_DCHECK_ENABLED));
}

#if LEQA_DCHECK_ENABLED
TEST(Check, FailingDcheckThrowsInDebug) {
    EXPECT_THROW(LEQA_DCHECK(false, "debug failure"), lu::InternalError);
    EXPECT_THROW(LEQA_DCHECK_OK(std::string("validator found rot")),
                 lu::InternalError);
}
#endif

// --- graph::validate_csr ----------------------------------------------------

TEST(ValidateCsr, CleanGraphPasses) {
    lg::CsrBuilder builder(4);
    builder.add_edge(0, 1);
    builder.add_edge(0, 2);
    builder.add_edge(1, 3);
    builder.add_edge(2, 3);
    const lg::CsrDigraph g = builder.build();
    EXPECT_TRUE(g.topologically_ordered());
    EXPECT_EQ(lg::validate_csr(g), "");
}

TEST(ValidateCsr, CatchesOutOfBoundsEdge) {
    // Hand-built arrays: node 0 -> node 7 in a 2-node graph.
    const std::vector<std::uint32_t> offsets = {0, 1, 1};
    const std::vector<lg::NodeId> targets = {7};
    const std::string err = lg::validate_csr(offsets, targets, false);
    EXPECT_NE(err.find("out of range"), std::string::npos) << err;
}

TEST(ValidateCsr, CatchesBadOffsets) {
    EXPECT_NE(lg::validate_csr(std::vector<std::uint32_t>{1, 1},
                               std::vector<lg::NodeId>{}, false)
                  .find("offsets[0]"),
              std::string::npos);
    EXPECT_NE(lg::validate_csr(std::vector<std::uint32_t>{0, 2, 1},
                               std::vector<lg::NodeId>{1, 0, 1}, false)
                  .find("not monotone"),
              std::string::npos);
    EXPECT_NE(lg::validate_csr(std::vector<std::uint32_t>{0, 1},
                               std::vector<lg::NodeId>{1, 0}, false)
                  .find("targets are stored"),
              std::string::npos);
}

TEST(ValidateCsr, CatchesSelfLoopAndUnsortedRow) {
    EXPECT_NE(lg::validate_csr(std::vector<std::uint32_t>{0, 1},
                               std::vector<lg::NodeId>{0}, false)
                  .find("self loop"),
              std::string::npos);
    EXPECT_NE(lg::validate_csr(std::vector<std::uint32_t>{0, 2, 2, 2},
                               std::vector<lg::NodeId>{2, 1}, false)
                  .find("sorted"),
              std::string::npos);
}

TEST(ValidateCsr, CatchesCycleViaKahn) {
    // 1 -> 2 -> 1: representable only as a non-topological graph.
    lg::CsrBuilder builder(3);
    builder.add_edge(1, 2);
    builder.add_edge(2, 1);
    const lg::CsrDigraph g = builder.build();
    EXPECT_FALSE(g.topologically_ordered());
    const std::string err = lg::validate_csr(g);
    EXPECT_NE(err.find("cycle"), std::string::npos) << err;
}

TEST(ValidateCsr, CatchesClaimedTopologicalOrderViolation) {
    // The edge 1 -> 0 is a fine DAG but violates the low->high claim.
    const std::vector<std::uint32_t> offsets = {0, 0, 1};
    const std::vector<lg::NodeId> targets = {0};
    EXPECT_EQ(lg::validate_csr(offsets, targets, false), "");
    EXPECT_NE(lg::validate_csr(offsets, targets, true).find("topological"),
              std::string::npos);
}

TEST(ValidateCsr, QodgIsClean) {
    const leqa::circuit::Circuit ft =
        leqa::synth::ft_synthesize(leqa::pipeline::parse_source("bench:ham3").load())
            .circuit;
    const leqa::qodg::Qodg graph(ft);
    EXPECT_EQ(lg::validate_csr(graph.csr()), "");
}

// --- fabric::validate_coverage / validate_topology --------------------------

TEST(ValidateCoverage, CleanHistogramsPass) {
    // Grid Eq. 5 table: expected mass is the zone area s^2.
    EXPECT_EQ(lf::validate_coverage(lf::CoverageHistogram::build(8, 8, 3), 9.0), "");
    EXPECT_EQ(lf::validate_coverage(lf::CoverageHistogram::build(12, 7, 4), 16.0), "");
}

TEST(ValidateCoverage, CatchesLostMass) {
    // A single bin covering every cell with probability 1/2 carries mass
    // cells/2; claiming zone area `cells` loses half the mass.
    const lf::CoverageHistogram histogram = lf::CoverageHistogram::from_bins(
        {lf::CoverageHistogram::Bin{0.5, 16.0}}, 16.0);
    EXPECT_EQ(lf::validate_coverage(histogram, 8.0), "");
    const std::string err = lf::validate_coverage(histogram, 16.0);
    EXPECT_NE(err.find("mass"), std::string::npos) << err;
}

TEST(ValidateCoverage, CatchesBadBins) {
    const std::string bad_p = lf::validate_coverage(
        lf::CoverageHistogram::from_bins({lf::CoverageHistogram::Bin{1.5, 4.0}}, 4.0),
        6.0);
    EXPECT_NE(bad_p.find("probability"), std::string::npos) << bad_p;

    const std::string bad_count = lf::validate_coverage(
        lf::CoverageHistogram::from_bins({lf::CoverageHistogram::Bin{0.5, 4.0}}, 9.0),
        2.0);
    EXPECT_NE(bad_count.find("cells"), std::string::npos) << bad_count;
}

TEST(ValidateTopology, AllKindsAreClean) {
    for (const lf::TopologyKind kind :
         {lf::TopologyKind::Grid, lf::TopologyKind::Torus}) {
        const auto topology = lf::make_topology(kind, 6, 5);
        EXPECT_EQ(lf::validate_topology(*topology), "") << topology->name();
    }
    const auto line = lf::make_topology(lf::TopologyKind::Line, 9, 1);
    EXPECT_EQ(lf::validate_topology(*line), "");
}

// --- core::PlacedTimer::audit ----------------------------------------------

leqa::core::PlacedTimer small_timer() {
    const leqa::circuit::Circuit ft =
        leqa::synth::ft_synthesize(leqa::pipeline::parse_source("bench:ham3").load())
            .circuit;
    static const leqa::qodg::Qodg graph(ft);
    lf::PhysicalParams params;
    params.width = 6;
    params.height = 6;
    std::vector<lf::UlbId> homes = leqa::qspr::initial_placement(
        lf::FabricGeometry(lf::make_topology(params)), ft.num_qubits(),
        leqa::qspr::PlacementStrategy::Random, /*seed=*/11);
    return {graph, ft, params, std::move(homes)};
}

TEST(PlacedAudit, CleanAfterMoves) {
    leqa::core::PlacedTimer timer = small_timer();
    EXPECT_EQ(timer.audit(), "");
    if (timer.num_qubits() >= 2) {
        (void)timer.apply_swap(0, 1);
        EXPECT_EQ(timer.audit(), "");
        (void)timer.apply_swap(0, 1); // revert path (undo-log replay)
        EXPECT_EQ(timer.audit(), "");
    }
}

TEST(PlacedAudit, CatchesPoisonedArrival) {
    leqa::core::PlacedTimer timer = small_timer();
    // A timer whose delay vector is silently edited behind its back models
    // incremental-state rot: the audit recomputes from scratch and reports
    // the first diverging node.
    const_cast<std::vector<double>&>(timer.delays())[timer.delays().size() / 2] +=
        1000.0;
    const std::string err = timer.audit();
    EXPECT_NE(err.find("placed:"), std::string::npos) << err;
}

} // namespace

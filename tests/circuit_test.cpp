// Unit tests for the circuit module: gates, metadata, container.
#include <gtest/gtest.h>

#include "circuit/circuit.h"
#include "util/error.h"

namespace lc = leqa::circuit;
using leqa::util::InputError;

// ------------------------------------------------------------------- gate --

TEST(GateInfo, NamesRoundTrip) {
    for (std::size_t i = 0; i < lc::kGateKindCount; ++i) {
        const auto kind = static_cast<lc::GateKind>(i);
        EXPECT_EQ(lc::parse_gate_name(lc::gate_name(kind)), kind);
    }
}

TEST(GateInfo, Aliases) {
    EXPECT_EQ(lc::parse_gate_name("NOT"), lc::GateKind::X);
    EXPECT_EQ(lc::parse_gate_name("cx"), lc::GateKind::Cnot);
    EXPECT_EQ(lc::parse_gate_name("CCX"), lc::GateKind::Toffoli);
    EXPECT_EQ(lc::parse_gate_name("cswap"), lc::GateKind::Fredkin);
    EXPECT_THROW((void)lc::parse_gate_name("bogus"), InputError);
    EXPECT_TRUE(lc::is_gate_name("tdg"));
    EXPECT_FALSE(lc::is_gate_name("qubit"));
}

TEST(GateInfo, FtMembership) {
    EXPECT_TRUE(lc::gate_info(lc::GateKind::Cnot).is_ft);
    EXPECT_TRUE(lc::gate_info(lc::GateKind::T).is_ft);
    EXPECT_FALSE(lc::gate_info(lc::GateKind::Toffoli).is_ft);
    EXPECT_FALSE(lc::gate_info(lc::GateKind::Swap).is_ft);
}

TEST(GateInfo, ClassicalMembership) {
    EXPECT_TRUE(lc::gate_info(lc::GateKind::X).is_classical);
    EXPECT_TRUE(lc::gate_info(lc::GateKind::Toffoli).is_classical);
    EXPECT_TRUE(lc::gate_info(lc::GateKind::Fredkin).is_classical);
    EXPECT_FALSE(lc::gate_info(lc::GateKind::H).is_classical);
    EXPECT_FALSE(lc::gate_info(lc::GateKind::T).is_classical);
}

TEST(Gate, ValidationCatchesDuplicates) {
    EXPECT_THROW(lc::make_cnot(1, 1).validate(), InputError);
    EXPECT_THROW(lc::make_toffoli(0, 0, 2).validate(), InputError);
    EXPECT_THROW(lc::make_fredkin(2, 2, 1).validate(), InputError);
    EXPECT_NO_THROW(lc::make_toffoli(0, 1, 2).validate());
}

TEST(Gate, ValidationCatchesArity) {
    lc::Gate bad(lc::GateKind::Cnot, {0, 1}, {2}); // two controls on CNOT
    EXPECT_THROW(bad.validate(), InputError);
    lc::Gate no_target(lc::GateKind::H, {}, {});
    EXPECT_THROW(no_target.validate(), InputError);
    lc::Gate no_controls(lc::GateKind::Toffoli, {}, {0});
    EXPECT_THROW(no_controls.validate(), InputError);
}

TEST(Gate, RangeValidation) {
    EXPECT_THROW(lc::make_cnot(0, 5).validate_against(3), InputError);
    EXPECT_NO_THROW(lc::make_cnot(0, 2).validate_against(3));
}

TEST(Gate, QubitsAndArity) {
    const auto gate = lc::make_mcx({0, 1, 2}, 3);
    EXPECT_EQ(gate.arity(), 4u);
    EXPECT_EQ(gate.qubits(), (std::vector<lc::Qubit>{0, 1, 2, 3}));
    EXPECT_FALSE(gate.is_two_qubit());
    EXPECT_TRUE(lc::make_cnot(0, 1).is_two_qubit());
}

TEST(Gate, McxWithSingleControlIsCnot) {
    const auto gate = lc::make_mcx({4}, 2);
    EXPECT_EQ(gate.kind, lc::GateKind::Cnot);
}

TEST(Gate, ToStringIsReadable) {
    EXPECT_EQ(lc::make_toffoli(0, 1, 2).to_string(), "toffoli q0, q1 -> q2");
    EXPECT_EQ(lc::make_h(3).to_string(), "h q3");
}

// ---------------------------------------------------------------- circuit --

TEST(Circuit, QubitManagement) {
    lc::Circuit circ;
    EXPECT_EQ(circ.add_qubit("a"), 0u);
    EXPECT_EQ(circ.add_qubit(), 1u); // auto-named q1
    EXPECT_EQ(circ.qubit_name(0), "a");
    EXPECT_EQ(circ.qubit_name(1), "q1");
    EXPECT_EQ(circ.qubit_index("a"), 0u);
    EXPECT_TRUE(circ.has_qubit("q1"));
    EXPECT_FALSE(circ.has_qubit("b"));
    EXPECT_THROW((void)circ.qubit_index("b"), InputError);
    EXPECT_THROW((void)circ.add_qubit("a"), InputError);
}

TEST(Circuit, FluentBuildersAndCounts) {
    lc::Circuit circ(4, "demo");
    circ.h(0).t(1).tdg(2).cnot(0, 1).toffoli(0, 1, 2).x(3).cnot(2, 3);
    EXPECT_EQ(circ.size(), 7u);
    const auto counts = circ.counts();
    EXPECT_EQ(counts.of(lc::GateKind::H), 1u);
    EXPECT_EQ(counts.of(lc::GateKind::Cnot), 2u);
    EXPECT_EQ(counts.of(lc::GateKind::Toffoli), 1u);
    EXPECT_EQ(counts.total(), 7u);
    EXPECT_EQ(counts.one_qubit_ft(), 4u); // h, t, tdg, x
}

TEST(Circuit, OneQubitFtCountIncludesX) {
    lc::Circuit circ(1);
    circ.x(0).h(0).t(0);
    EXPECT_EQ(circ.counts().one_qubit_ft(), 3u);
}

TEST(Circuit, RejectsOutOfRangeGate) {
    lc::Circuit circ(2);
    EXPECT_THROW(circ.cnot(0, 2), InputError);
    EXPECT_THROW(circ.add_gate(lc::make_toffoli(0, 1, 5)), InputError);
}

TEST(Circuit, FtAndClassicalPredicates) {
    lc::Circuit ft(2);
    ft.h(0).cnot(0, 1).t(1);
    EXPECT_TRUE(ft.is_ft());
    EXPECT_FALSE(ft.is_classical());

    lc::Circuit classical(3);
    classical.x(0).cnot(0, 1).toffoli(0, 1, 2);
    EXPECT_TRUE(classical.is_classical());
    EXPECT_FALSE(classical.is_ft()); // toffoli is not FT

    lc::Circuit both(2);
    both.x(0).cnot(0, 1);
    EXPECT_TRUE(both.is_ft());
    EXPECT_TRUE(both.is_classical());
}

TEST(Circuit, UnusedQubits) {
    lc::Circuit circ(4);
    circ.cnot(0, 2);
    const auto unused = circ.unused_qubits();
    EXPECT_EQ(unused, (std::vector<lc::Qubit>{1, 3}));
}

TEST(Circuit, TwoQubitGateCountCountsArityNotKind) {
    lc::Circuit circ(3);
    circ.h(0).cnot(0, 1).toffoli(0, 1, 2).swap(1, 2);
    EXPECT_EQ(circ.two_qubit_gate_count(), 3u); // cnot, toffoli, swap
}

TEST(Circuit, AppendAndStructuralEquality) {
    lc::Circuit a(2);
    a.h(0).cnot(0, 1);
    lc::Circuit b(2);
    b.h(0);
    lc::Circuit tail(2);
    tail.cnot(0, 1);
    b.append(tail);
    EXPECT_TRUE(a.same_structure(b));

    lc::Circuit c(3);
    c.h(0).cnot(0, 1);
    EXPECT_FALSE(a.same_structure(c)); // differing qubit count

    lc::Circuit big(1);
    lc::Circuit wide(2);
    EXPECT_THROW(big.append(wide), InputError);
}

TEST(Circuit, MetadataSurvives) {
    lc::Circuit circ(1, "named");
    circ.add_comment("generator: test");
    EXPECT_EQ(circ.name(), "named");
    ASSERT_EQ(circ.comments().size(), 1u);
    EXPECT_EQ(circ.comments()[0], "generator: test");
}

TEST(GateCounts, ToStringListsNonZero) {
    lc::Circuit circ(2);
    circ.h(0).h(1).cnot(0, 1);
    const std::string text = circ.counts().to_string();
    EXPECT_NE(text.find("h=2"), std::string::npos);
    EXPECT_NE(text.find("cnot=1"), std::string::npos);
    EXPECT_EQ(text.find("tdg="), std::string::npos);
    EXPECT_EQ(text.find("toffoli="), std::string::npos);
}

// Tests for the batched SoA parameter stage: the multi-lane Eq. 18
// recursion (mathx::BinomialRowBatch), the SoA E[S_q] evaluation, the keyed
// E[S_q] LRU cache that replaced the single-entry memo, the lane-blocked
// critical-path pass, and EstimationEngine::estimate_batch itself.
//
// The parity bar is BIT-IDENTITY, not a tolerance: the SoA recursion
// renormalizes by exact powers of two (the same rescaling frexp applies in
// the scalar path), the batch reduction accumulates in the scalar's bin
// order, and the lane-blocked longest path performs the scalar relaxation
// per lane — so every field of a batched estimate must equal the scalar
// engine's double for double.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "benchgen/suite.h"
#include "core/engine.h"
#include "core/explore.h"
#include "core/leqa.h"
#include "core/sweep.h"
#include "fabric/topology.h"
#include "iig/iig.h"
#include "mathx/binomial.h"
#include "pipeline/pipeline.h"
#include "qodg/qodg.h"
#include "synth/ft_synth.h"
#include "util/error.h"

namespace lc = leqa::circuit;
namespace lcore = leqa::core;
namespace lf = leqa::fabric;
namespace lm = leqa::mathx;
namespace lp = leqa::pipeline;
namespace lu = leqa::util;

namespace {

struct ProfiledCircuit {
    lc::Circuit ft;
    std::unique_ptr<leqa::qodg::Qodg> graph;
    std::unique_ptr<leqa::iig::Iig> iig;
    lcore::CircuitProfile profile;
};

ProfiledCircuit profiled(const std::string& bench) {
    ProfiledCircuit out{
        leqa::synth::ft_synthesize(lp::parse_source("bench:" + bench).load()).circuit,
        nullptr, nullptr, {}};
    out.graph = std::make_unique<leqa::qodg::Qodg>(out.ft);
    out.iig = std::make_unique<leqa::iig::Iig>(out.ft);
    out.profile = lcore::CircuitProfile::build(*out.graph, *out.iig);
    return out;
}

/// Scalar reference for one batch point: a fresh engine at the overridden
/// (Nc, v), so no state is shared with the batch engine under test.
leqa::core::LeqaEstimate scalar_estimate(const lcore::CircuitProfile& profile,
                                         const lf::PhysicalParams& base, int nc,
                                         double v) {
    lf::PhysicalParams params = base;
    params.nc = nc;
    params.v = v;
    const lcore::EstimationEngine engine(params);
    return engine.estimate(profile);
}

/// Every field of the estimate, compared bit for bit (EXPECT_EQ on doubles
/// is exact; NaN-latency points are compared by bit pattern instead).
void expect_estimates_identical(const leqa::core::LeqaEstimate& batched,
                                const leqa::core::LeqaEstimate& scalar,
                                const std::string& what) {
    if (std::isnan(scalar.latency_us)) {
        EXPECT_TRUE(std::isnan(batched.latency_us)) << what;
    } else {
        EXPECT_EQ(batched.latency_us, scalar.latency_us) << what;
    }
    EXPECT_EQ(batched.zone_area_b, scalar.zone_area_b) << what;
    EXPECT_EQ(batched.d_uncongest_us, scalar.d_uncongest_us) << what;
    EXPECT_EQ(batched.l_cnot_avg_us, scalar.l_cnot_avg_us) << what;
    EXPECT_EQ(batched.l_one_qubit_avg_us, scalar.l_one_qubit_avg_us) << what;
    EXPECT_EQ(batched.covered_area, scalar.covered_area) << what;
    EXPECT_EQ(batched.e_sq, scalar.e_sq) << what;
    EXPECT_EQ(batched.d_q, scalar.d_q) << what;
    EXPECT_EQ(batched.critical_census.by_kind, scalar.critical_census.by_kind) << what;
    EXPECT_EQ(batched.critical_census.total_ops, scalar.critical_census.total_ops)
        << what;
    EXPECT_EQ(batched.critical_cnots, scalar.critical_cnots) << what;
    EXPECT_EQ(batched.critical_one_qubit, scalar.critical_one_qubit) << what;
    EXPECT_EQ(batched.critical_gate_delay_us, scalar.critical_gate_delay_us) << what;
    EXPECT_EQ(batched.num_qubits, scalar.num_qubits) << what;
    EXPECT_EQ(batched.num_ops, scalar.num_ops) << what;
}

/// A mixed (Nc, v) axis long enough to exercise full lane blocks plus a
/// ragged tail (10 points = 8 + 2 at the default lane width).
std::vector<lcore::ParameterPoint> mixed_axis() {
    std::vector<lcore::ParameterPoint> points;
    for (const int nc : {2, 5, 9}) {
        for (const double v : {2e-4, 1e-3, 5e-3}) {
            points.push_back({nc, v});
        }
    }
    points.push_back({1, 1.0});
    return points;
}

} // namespace

// ------------------------------------------- SoA Eq. 18 recursion batch ----

TEST(BinomialRowBatch, LanesMatchScalarRecursionBitwise) {
    const std::vector<double> probabilities = {0.004, 0.25, 0.5, 0.97, 1e-7};
    const std::int64_t n = 768;
    lm::BinomialRowBatch batch(n, probabilities);
    std::vector<lm::BinomialTermRecursion> rows;
    for (const double p : probabilities) rows.emplace_back(n, p);

    std::vector<double> values(probabilities.size());
    for (std::int64_t q = 0; q <= 80; ++q) {
        batch.values(values);
        for (std::size_t lane = 0; lane < rows.size(); ++lane) {
            EXPECT_EQ(values[lane], rows[lane].value())
                << "lane " << lane << " q " << q;
            EXPECT_EQ(batch.value(lane), rows[lane].value())
                << "lane " << lane << " q " << q;
        }
        batch.advance();
        for (lm::BinomialTermRecursion& row : rows) row.advance();
    }
}

TEST(BinomialRowBatch, DegenerateLanesAreExact) {
    // p == 0 flows through the recursion naturally (ratio 0); p == 1 would
    // blow up the ratio and is overridden with the exact indicator.
    const std::vector<double> probabilities = {0.0, 1.0, 0.5};
    const std::int64_t n = 6;
    lm::BinomialRowBatch batch(n, probabilities);
    for (std::int64_t q = 0; q <= n + 2; ++q) {
        EXPECT_EQ(batch.value(0), q == 0 ? 1.0 : 0.0) << "p=0 lane at q " << q;
        EXPECT_EQ(batch.value(1), q == n ? 1.0 : 0.0) << "p=1 lane at q " << q;
        batch.advance();
    }
}

TEST(BinomialRowBatch, SurvivesUnderflowingStart) {
    // Same bar as the scalar recursion: a 2^-4000 start must recover the
    // mid-range terms bit-identically to the scalar trajectory.
    const std::int64_t n = 4000;
    lm::BinomialRowBatch batch(n, std::vector<double>{0.5});
    lm::BinomialTermRecursion row(n, 0.5);
    for (std::int64_t q = 0; q < 2000; ++q) {
        batch.advance();
        row.advance();
    }
    EXPECT_GT(row.value(), 0.0);
    EXPECT_EQ(batch.value(0), row.value());
}

TEST(BinomialRowBatch, EmptyLaneSetIsValid) {
    lm::BinomialRowBatch batch(10, std::vector<double>{});
    EXPECT_EQ(batch.lanes(), 0u);
    batch.advance(); // no lanes to step, still bookkeeps q
    EXPECT_EQ(batch.q(), 1);
}

// ---------------------------------------------------- SoA E[S_q] kernel ----

TEST(ExpectedSurfacesSoA, MatchesReferenceAcrossHistograms) {
    const struct {
        lcore::CoverageHistogram histogram;
        const char* name;
    } cases[] = {
        {lcore::CoverageHistogram::build(60, 60, 6), "grid 60x60 s=6"},
        {lcore::CoverageHistogram::build(50, 49, 7), "grid 50x49 s=7"},
        // Zone covers the fabric: every bin probability is exactly 1 (the
        // p == 1 indicator lanes).
        {lcore::CoverageHistogram::build(5, 5, 5), "grid 5x5 s=5"},
        {lf::make_topology(lf::TopologyKind::Torus, 32, 32)->coverage_histogram(5),
         "torus 32x32 s=5"},
        {lf::make_topology(lf::TopologyKind::Line, 900, 1)->coverage_histogram(4),
         "line 900x1 s=4"},
    };
    for (const auto& test_case : cases) {
        for (const long long q_total : {0LL, 1LL, 96LL, 768LL}) {
            const long long terms = std::min<long long>(q_total, 20);
            const std::vector<double> batched = lcore::EstimationEngine::expected_surfaces(
                test_case.histogram, q_total, terms);
            const std::vector<double> reference =
                lcore::EstimationEngine::expected_surfaces_reference(test_case.histogram,
                                                                     q_total, terms);
            ASSERT_EQ(batched.size(), reference.size()) << test_case.name;
            for (std::size_t i = 0; i < batched.size(); ++i) {
                EXPECT_EQ(batched[i], reference[i])
                    << test_case.name << " q_total " << q_total << " q " << i + 1;
            }
        }
    }
}

// ----------------------------------------------------- estimate_batch ------

TEST(EstimateBatch, MatchesScalarAcrossTopologies) {
    const ProfiledCircuit circuit = profiled("8bitadder");
    const std::vector<lcore::ParameterPoint> points = mixed_axis();
    for (const lf::TopologyKind kind :
         {lf::TopologyKind::Grid, lf::TopologyKind::Torus, lf::TopologyKind::Line}) {
        lf::PhysicalParams base;
        base.topology = kind;
        if (kind == lf::TopologyKind::Line) {
            base.width = 60 * 60;
            base.height = 1;
        }
        const lcore::EstimationEngine engine(base);
        const std::vector<leqa::core::LeqaEstimate> batched =
            engine.estimate_batch(circuit.profile, points);
        ASSERT_EQ(batched.size(), points.size());
        for (std::size_t i = 0; i < points.size(); ++i) {
            expect_estimates_identical(
                batched[i],
                scalar_estimate(circuit.profile, base, points[i].nc, points[i].v),
                "topology " + std::to_string(static_cast<int>(kind)) + " point " +
                    std::to_string(i));
        }
    }
}

TEST(EstimateBatch, DegenerateBatchSizes) {
    const ProfiledCircuit circuit = profiled("ham3");
    const lf::PhysicalParams base;
    const lcore::EstimationEngine engine(base);

    const std::vector<lcore::ParameterPoint> empty;
    EXPECT_TRUE(engine.estimate_batch(circuit.profile, empty).empty());

    const std::vector<lcore::ParameterPoint> single = {{7, 3e-3}};
    const std::vector<leqa::core::LeqaEstimate> batched =
        engine.estimate_batch(circuit.profile, single);
    ASSERT_EQ(batched.size(), 1u);
    expect_estimates_identical(batched[0],
                               scalar_estimate(circuit.profile, base, 7, 3e-3),
                               "single-point batch");
}

TEST(EstimateBatch, SubnormalSpeedMatchesScalar) {
    // The explore edge case routed through the batch path: a subnormal v
    // overflows d_uncongest to infinity; the batch must produce the exact
    // non-finite latency the scalar engine produces.
    const ProfiledCircuit circuit = profiled("ham3");
    const lf::PhysicalParams base;
    const lcore::EstimationEngine engine(base);
    const std::vector<lcore::ParameterPoint> points = {{5, 1e-310}, {5, 1e-3}};
    const std::vector<leqa::core::LeqaEstimate> batched =
        engine.estimate_batch(circuit.profile, points);
    ASSERT_EQ(batched.size(), 2u);
    EXPECT_FALSE(std::isfinite(batched[0].latency_us));
    EXPECT_TRUE(std::isfinite(batched[1].latency_us));
    for (std::size_t i = 0; i < points.size(); ++i) {
        expect_estimates_identical(
            batched[i],
            scalar_estimate(circuit.profile, base, points[i].nc, points[i].v),
            "subnormal batch point " + std::to_string(i));
    }
}

TEST(EstimateBatch, RejectsInvalidPoints) {
    const ProfiledCircuit circuit = profiled("ham3");
    const lcore::EstimationEngine engine(lf::PhysicalParams{});
    const std::vector<lcore::ParameterPoint> bad_nc = {{0, 1e-3}};
    EXPECT_THROW((void)engine.estimate_batch(circuit.profile, bad_nc),
                 lu::InputError);
    const std::vector<lcore::ParameterPoint> bad_v = {{5, 0.0}};
    EXPECT_THROW((void)engine.estimate_batch(circuit.profile, bad_v),
                 lu::InputError);
}

TEST(EstimateBatch, BeforePointRunsOncePerPointAndCanAbort) {
    const ProfiledCircuit circuit = profiled("ham3");
    const lcore::EstimationEngine engine(lf::PhysicalParams{});
    const std::vector<lcore::ParameterPoint> points = mixed_axis();

    std::size_t calls = 0;
    (void)engine.estimate_batch(circuit.profile, points, [&] { ++calls; });
    EXPECT_EQ(calls, points.size());

    struct Cancel {};
    std::size_t until_cancel = 0;
    EXPECT_THROW((void)engine.estimate_batch(circuit.profile, points,
                                             [&] {
                                                 if (++until_cancel == 3) throw Cancel{};
                                             }),
                 Cancel);
    EXPECT_EQ(until_cancel, 3u);
}

// ------------------------------------------------- keyed E[S_q] LRU cache --

TEST(SurfaceCache, AlternatingTopologiesDoNotThrash) {
    // The regression the keyed cache exists for: interleaving two fabric
    // geometries through one engine recomputed E[S_q] on EVERY point with
    // the old single-entry memo.  Now each geometry is computed once.
    const ProfiledCircuit circuit = profiled("8bitadder");
    lf::PhysicalParams grid;
    lf::PhysicalParams torus;
    torus.topology = lf::TopologyKind::Torus;

    lcore::EstimationEngine engine(grid);
    for (int round = 0; round < 10; ++round) {
        engine.set_params(round % 2 == 0 ? grid : torus);
        (void)engine.estimate(circuit.profile);
    }
    const lcore::SurfaceCacheStats& stats = engine.surface_cache_stats();
    EXPECT_EQ(stats.recomputes, 2u); // one per distinct geometry, not per point
    EXPECT_EQ(stats.hits, 8u);
    EXPECT_EQ(stats.evictions, 0u);
}

TEST(SurfaceCache, CapacityBoundsEntriesAndEvicts) {
    // More distinct geometries than the cache holds: evictions must kick in
    // and a re-visit of the oldest geometry recomputes.
    const ProfiledCircuit circuit = profiled("ham3");
    lf::PhysicalParams params;
    lcore::EstimationEngine engine(params);
    for (int side = 40; side < 50; ++side) { // 10 distinct geometries > capacity 8
        params.width = side;
        params.height = side;
        engine.set_params(params);
        (void)engine.estimate(circuit.profile);
    }
    const lcore::SurfaceCacheStats& stats = engine.surface_cache_stats();
    EXPECT_EQ(stats.recomputes, 10u);
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(stats.hits, 0u);

    params.width = 40; // evicted: the revisit is a recompute
    params.height = 40;
    engine.set_params(params);
    (void)engine.estimate(circuit.profile);
    EXPECT_EQ(engine.surface_cache_stats().recomputes, 11u);
}

// ------------------------------------------- batch through explore/sweeps --

TEST(EstimateBatch, ExploreMatchesScalarEngineLoop) {
    // evaluate_configurations now feeds whole geometry groups to
    // estimate_batch; the published grid must equal a hand-rolled scalar
    // loop over the same configurations.
    const ProfiledCircuit circuit = profiled("8bitadder");
    lf::PhysicalParams base;
    lcore::ExplorationSpec spec;
    spec.topologies = {lf::TopologyKind::Grid, lf::TopologyKind::Torus};
    spec.sides = {8, 10};
    spec.capacities = {3, 5};
    spec.speeds = {5e-4, 1e-3, 2e-3};
    spec.threads = 1;

    const std::vector<lf::PhysicalParams> configurations =
        lcore::exploration_configurations(circuit.profile.num_qubits, base, spec);
    const lcore::ExplorationResult result = lcore::evaluate_configurations(
        circuit.profile, configurations, {}, spec.threads, {});

    ASSERT_EQ(result.points.size(), configurations.size());
    for (std::size_t i = 0; i < configurations.size(); ++i) {
        const lcore::EstimationEngine engine(configurations[i]);
        expect_estimates_identical(result.points[i].estimate,
                                   engine.estimate(circuit.profile),
                                   "explore point " + std::to_string(i));
    }
}

// Tests for the staged estimation engine: the Eq. 18 running PMF recursion,
// the compressed coverage histogram, and the golden parity bar — the staged
// engine must reproduce the pre-refactor estimate path
// (LeqaEstimator::estimate_reference) to within 1e-9 relative across the
// bench suite and across parameter points.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "benchgen/suite.h"
#include "core/engine.h"
#include "core/leqa.h"
#include "iig/iig.h"
#include "mathx/binomial.h"
#include "qodg/qodg.h"
#include "synth/ft_synth.h"
#include "util/error.h"

namespace lb = leqa::benchgen;
namespace lc = leqa::circuit;
namespace lcore = leqa::core;
namespace lf = leqa::fabric;
namespace lm = leqa::mathx;

namespace {

void expect_rel_near(double actual, double expected, double rel_tol,
                     const std::string& what) {
    const double scale = std::max({std::abs(expected), std::abs(actual), 1e-300});
    EXPECT_LE(std::abs(actual - expected) / scale, rel_tol) << what << ": " << actual
                                                            << " vs " << expected;
}

} // namespace

// ------------------------------------------------- Eq. 18 running PMF ------

TEST(BinomialTermRecursion, MatchesLogSpacePmf) {
    for (const auto& [n, p] : std::vector<std::pair<std::int64_t, double>>{
             {10, 0.3}, {768, 0.004}, {768, 0.25}, {3145, 0.004}, {50, 0.97}}) {
        lm::BinomialTermRecursion row(n, p);
        for (std::int64_t q = 0; q <= std::min<std::int64_t>(n, 40); ++q) {
            const double reference = lm::binomial_pmf(n, q, p);
            if (reference > 0.0) {
                expect_rel_near(row.value(), reference, 1e-11,
                                "pmf(n=" + std::to_string(n) + ", q=" + std::to_string(q) +
                                    ")");
            } else {
                EXPECT_NEAR(row.value(), 0.0, 1e-300);
            }
            row.advance();
        }
    }
}

TEST(BinomialTermRecursion, SurvivesUnderflowingStart) {
    // (1-p)^n underflows double range, but the q ~ n*p terms are well inside
    // it; the scaled recursion must recover them where a naive linear
    // product would be stuck at zero.
    const std::int64_t n = 4000;
    const double p = 0.5; // (1-p)^n = 2^-4000, far below double range
    lm::BinomialTermRecursion row(n, p);
    for (std::int64_t q = 0; q < 2000; ++q) row.advance();
    const double reference = lm::binomial_pmf(n, 2000, p);
    EXPECT_GT(reference, 0.0);
    expect_rel_near(row.value(), reference, 1e-9, "pmf(4000, 2000, 0.5)");
}

TEST(BinomialTermRecursion, ExactEndpoints) {
    lm::BinomialTermRecursion zero(5, 0.0);
    EXPECT_DOUBLE_EQ(zero.value(), 1.0);
    zero.advance();
    EXPECT_DOUBLE_EQ(zero.value(), 0.0);

    lm::BinomialTermRecursion one(3, 1.0);
    EXPECT_DOUBLE_EQ(one.value(), 0.0);
    one.advance();
    one.advance();
    one.advance();
    EXPECT_DOUBLE_EQ(one.value(), 1.0); // q == n

    lm::BinomialTermRecursion tiny(0, 0.4);
    EXPECT_DOUBLE_EQ(tiny.value(), 1.0);
    tiny.advance(); // past q == n pins to zero
    EXPECT_DOUBLE_EQ(tiny.value(), 0.0);
}

TEST(BinomialTermRecursion, AgreesWithEq18Row) {
    // At p = 1/2 the PMF is C(n,q) / 2^n: the running recursion must track
    // the directly evaluated Eq. 18 row.
    const std::int64_t n = 30;
    const auto row = lm::binomial_row_recursive(n, n);
    lm::BinomialTermRecursion running(n, 0.5);
    const double scale = std::pow(2.0, -static_cast<double>(n));
    for (std::int64_t q = 0; q <= n; ++q) {
        expect_rel_near(running.value(), row[static_cast<std::size_t>(q)] * scale, 1e-12,
                        "q=" + std::to_string(q));
        running.advance();
    }
}

// ---------------------------------------------------- coverage histogram ---

TEST(CoverageHistogram, MatchesPerCellTableAndStaysSmall) {
    for (const auto& [a, b, s] : std::vector<std::array<int, 3>>{
             {10, 10, 3}, {60, 60, 6}, {50, 50, 7}, {7, 13, 5}, {5, 5, 5}, {9, 4, 1}}) {
        const auto histogram = lcore::CoverageHistogram::build(a, b, s);

        // Bin count is bounded by s^2 however large the fabric is.
        EXPECT_LE(histogram.bins().size(),
                  static_cast<std::size_t>(s) * static_cast<std::size_t>(s));

        // Multiplicities add up to the fabric area...
        double total_cells = 0.0;
        for (const auto& bin : histogram.bins()) total_cells += bin.multiplicity;
        EXPECT_DOUBLE_EQ(total_cells, static_cast<double>(a) * b);
        EXPECT_DOUBLE_EQ(histogram.cells(), static_cast<double>(a) * b);

        // ... and the multiplicity-weighted probabilities match the
        // per-cell Eq. 5 table exactly (same nx*ny/denom doubles).
        std::map<double, double> expected;
        for (int x = 1; x <= a; ++x) {
            for (int y = 1; y <= b; ++y) {
                expected[lcore::LeqaEstimator::coverage_probability(x, y, a, b, s)] += 1.0;
            }
        }
        ASSERT_EQ(histogram.bins().size(), expected.size()) << a << "x" << b << " s=" << s;
        for (const auto& bin : histogram.bins()) {
            const auto it = expected.find(bin.probability);
            ASSERT_NE(it, expected.end()) << "probability " << bin.probability;
            EXPECT_DOUBLE_EQ(bin.multiplicity, it->second);
        }
    }
}

TEST(CoverageHistogram, ExpectedSurfacesMatchReferenceSummation) {
    const int a = 60, b = 60, s = 6;
    const auto histogram = lcore::CoverageHistogram::build(a, b, s);
    std::vector<double> coverage;
    for (int x = 1; x <= a; ++x) {
        for (int y = 1; y <= b; ++y) {
            coverage.push_back(lcore::LeqaEstimator::coverage_probability(x, y, a, b, s));
        }
    }
    const long long q_total = 768;
    const auto surfaces = lcore::EstimationEngine::expected_surfaces(histogram, q_total, 20);
    ASSERT_EQ(surfaces.size(), 20u);
    for (long long q = 1; q <= 20; ++q) {
        const double reference = lcore::LeqaEstimator::expected_surface(coverage, q_total, q);
        expect_rel_near(surfaces[static_cast<std::size_t>(q - 1)], reference, 1e-9,
                        "E[S_" + std::to_string(q) + "]");
    }
}

TEST(CoverageHistogram, InvalidArguments) {
    EXPECT_THROW((void)lcore::CoverageHistogram::build(0, 5, 1), leqa::util::InputError);
    EXPECT_THROW((void)lcore::CoverageHistogram::build(5, 5, 0), leqa::util::InputError);
    EXPECT_THROW((void)lcore::CoverageHistogram::build(5, 5, 6), leqa::util::InputError);
}

// ------------------------------------------------------- golden parity -----

namespace {

void expect_estimates_match(const lcore::LeqaEstimate& staged,
                            const lcore::LeqaEstimate& reference,
                            const std::string& what) {
    expect_rel_near(staged.latency_us, reference.latency_us, 1e-9, what + " latency");
    expect_rel_near(staged.zone_area_b, reference.zone_area_b, 1e-9, what + " B");
    expect_rel_near(staged.d_uncongest_us, reference.d_uncongest_us, 1e-9,
                    what + " d_uncongest");
    expect_rel_near(staged.l_cnot_avg_us, reference.l_cnot_avg_us, 1e-9,
                    what + " L_CNOT");
    expect_rel_near(staged.covered_area, reference.covered_area, 1e-9,
                    what + " covered area");
    ASSERT_EQ(staged.e_sq.size(), reference.e_sq.size()) << what;
    for (std::size_t k = 0; k < reference.e_sq.size(); ++k) {
        expect_rel_near(staged.e_sq[k], reference.e_sq[k], 1e-9,
                        what + " E[S_" + std::to_string(k + 1) + "]");
        expect_rel_near(staged.d_q[k], reference.d_q[k], 1e-9,
                        what + " d_" + std::to_string(k + 1));
    }
    // The census is discrete: it must match exactly.
    EXPECT_EQ(staged.critical_census.total_ops, reference.critical_census.total_ops)
        << what;
    for (std::size_t k = 0; k < lc::kGateKindCount; ++k) {
        EXPECT_EQ(staged.critical_census.by_kind[k], reference.critical_census.by_kind[k])
            << what << " kind " << k;
    }
    EXPECT_EQ(staged.critical_cnots, reference.critical_cnots) << what;
    expect_rel_near(staged.critical_gate_delay_us, reference.critical_gate_delay_us, 1e-9,
                    what + " critical gate delay");
}

} // namespace

TEST(EngineParity, ReproducesReferenceAcrossBenchSuite) {
    for (const auto& spec : lb::paper_suite()) {
        if (spec.paper_ops > 70000) continue; // keep runtime modest
        const auto ft = lb::make_ft_benchmark(spec.name).circuit;
        const leqa::qodg::Qodg graph(ft);
        const leqa::iig::Iig iig(ft);
        const auto profile = lcore::CircuitProfile::build(graph, iig);

        // Default Table 1 parameters and the 50x50 fabric of the perf bar.
        std::vector<lf::PhysicalParams> points(3);
        points[1].width = 50;
        points[1].height = 50;
        points[2].nc = 2;
        points[2].v = 0.01;
        for (const auto& params : points) {
            const lcore::LeqaEstimator estimator(params);
            const lcore::EstimationEngine engine(params);
            expect_estimates_match(engine.estimate(profile),
                                   estimator.estimate_reference(graph, iig),
                                   spec.name);
        }
    }
}

TEST(EngineParity, ExactSqPathMatchesReference) {
    const auto ft = lb::make_ft_benchmark("gf2^16mult").circuit;
    const leqa::qodg::Qodg graph(ft);
    const leqa::iig::Iig iig(ft);
    const auto profile = lcore::CircuitProfile::build(graph, iig);
    lcore::LeqaOptions options;
    options.exact_sq = true; // every q up to Q, not just the first 20
    const lf::PhysicalParams params;
    const lcore::EstimationEngine engine(params, options);
    const lcore::LeqaEstimator estimator(params, options);
    expect_estimates_match(engine.estimate(profile),
                           estimator.estimate_reference(graph, iig), "gf2^16mult exact");
}

TEST(EngineParity, EstimatorDelegatesToEngine) {
    // LeqaEstimator::estimate and the engine must agree bit for bit: the
    // estimator is now a thin wrapper over the staged path.
    const auto ft = lb::make_ft_benchmark("8bitadder").circuit;
    const leqa::qodg::Qodg graph(ft);
    const leqa::iig::Iig iig(ft);
    const lf::PhysicalParams params;
    const auto via_estimator = lcore::LeqaEstimator(params).estimate(graph, iig);
    const auto via_engine =
        lcore::EstimationEngine(params).estimate(lcore::CircuitProfile::build(graph, iig));
    EXPECT_DOUBLE_EQ(via_estimator.latency_us, via_engine.latency_us);
    EXPECT_DOUBLE_EQ(via_estimator.l_cnot_avg_us, via_engine.l_cnot_avg_us);
    EXPECT_EQ(via_estimator.critical_census.total_ops,
              via_engine.critical_census.total_ops);
}

TEST(Engine, ProfileCapturesCircuitInvariants) {
    const auto ft = lb::make_ft_benchmark("8bitadder").circuit;
    const leqa::qodg::Qodg graph(ft);
    const leqa::iig::Iig iig(ft);
    const auto profile = lcore::CircuitProfile::build(graph, iig);
    EXPECT_EQ(profile.num_qubits, iig.num_qubits());
    EXPECT_EQ(profile.num_ops, graph.num_ops());
    EXPECT_DOUBLE_EQ(profile.zone_area_b, iig.average_zone_area());
    EXPECT_GT(profile.d_uncongest_v, 0.0);
    std::size_t counted = 0;
    for (const auto count : profile.gate_counts) counted += count;
    EXPECT_EQ(counted, graph.num_ops());

    // d_uncongest_v really is the v-free factor: scaling v must scale the
    // estimate's d_uncongest inversely.
    lf::PhysicalParams slow;
    slow.v = 0.001;
    lf::PhysicalParams fast = slow;
    fast.v = 0.01;
    const auto d_slow =
        lcore::EstimationEngine(slow).estimate(profile).d_uncongest_us;
    const auto d_fast =
        lcore::EstimationEngine(fast).estimate(profile).d_uncongest_us;
    EXPECT_NEAR(d_slow / d_fast, 10.0, 1e-9);
}

TEST(Engine, RejectsDetachedProfile) {
    lcore::CircuitProfile orphan;
    const lcore::EstimationEngine engine(lf::PhysicalParams{});
    EXPECT_THROW((void)engine.estimate(orphan), leqa::util::InputError);
}

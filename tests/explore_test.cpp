// Tests for the parallel multi-dimensional design-space explorer
// (core/explore.h) and the sweep correctness fixes that rode along with it:
// 64-bit line-topology area sizing, NaN-robust best-point selection, and
// the sweep edge paths (all-infeasible, mid-exploration cancellation,
// parallel-vs-serial bit-identity).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>

#include "benchgen/suite.h"
#include "core/explore.h"
#include "core/sweep.h"
#include "iig/iig.h"
#include "pipeline/pipeline.h"
#include "qodg/qodg.h"
#include "report/report.h"
#include "service/service.h"
#include "synth/ft_synth.h"
#include "util/error.h"

namespace lcore = leqa::core;
namespace lf = leqa::fabric;
namespace lp = leqa::pipeline;
namespace lu = leqa::util;

namespace {

struct ProfiledCircuit {
    leqa::circuit::Circuit ft;
    std::unique_ptr<leqa::qodg::Qodg> graph;
    std::unique_ptr<leqa::iig::Iig> iig;
    lcore::CircuitProfile profile;
};

ProfiledCircuit profiled(const std::string& bench) {
    ProfiledCircuit out{
        leqa::synth::ft_synthesize(lp::parse_source("bench:" + bench).load()).circuit,
        nullptr, nullptr, {}};
    out.graph = std::make_unique<leqa::qodg::Qodg>(out.ft);
    out.iig = std::make_unique<leqa::iig::Iig>(out.ft);
    out.profile = lcore::CircuitProfile::build(*out.graph, *out.iig);
    return out;
}

lcore::SweepPoint point_with_latency(double latency_us) {
    lcore::SweepPoint point;
    point.estimate.latency_us = latency_us;
    return point;
}

} // namespace

// ---------------------------------------------------------------- explore --

TEST(Explore, CrossProductOrderAndSize) {
    const ProfiledCircuit circuit = profiled("ham3");
    lcore::ExplorationSpec spec;
    spec.topologies = {lf::TopologyKind::Grid, lf::TopologyKind::Torus};
    spec.sides = {8, 10};
    spec.capacities = {3, 5};
    spec.speeds = {0.001, 0.002};

    const lcore::ExplorationResult result =
        lcore::explore(circuit.profile, lf::PhysicalParams{}, spec);
    ASSERT_EQ(result.points.size(), 16u);
    // v is the innermost axis, then Nc, then side, then topology.
    EXPECT_EQ(result.points[0].params.v, 0.001);
    EXPECT_EQ(result.points[1].params.v, 0.002);
    EXPECT_EQ(result.points[0].params.nc, 3);
    EXPECT_EQ(result.points[2].params.nc, 5);
    EXPECT_EQ(result.points[0].params.width, 8);
    EXPECT_EQ(result.points[4].params.width, 10);
    EXPECT_EQ(result.points[0].params.topology, lf::TopologyKind::Grid);
    EXPECT_EQ(result.points[8].params.topology, lf::TopologyKind::Torus);
    ASSERT_TRUE(result.has_best());
    EXPECT_TRUE(std::isfinite(result.best().estimate.latency_us));
}

TEST(Explore, DefaultAxesKeepBaseParams) {
    const ProfiledCircuit circuit = profiled("ham3");
    lf::PhysicalParams base;
    base.nc = 4;
    base.v = 0.003;
    lcore::ExplorationSpec spec;
    spec.sides = {9};

    const lcore::ExplorationResult result =
        lcore::explore(circuit.profile, base, spec);
    ASSERT_EQ(result.points.size(), 1u);
    EXPECT_EQ(result.points[0].params.nc, 4);
    EXPECT_EQ(result.points[0].params.v, 0.003);
    EXPECT_EQ(result.points[0].params.width, 9);
    EXPECT_EQ(result.points[0].params.height, 9);
    EXPECT_EQ(result.points[0].params.topology, lf::TopologyKind::Grid);
}

TEST(Explore, ParallelBitIdenticalToSerial) {
    const ProfiledCircuit circuit = profiled("8bitadder");
    lcore::ExplorationSpec spec;
    spec.topologies = {lf::TopologyKind::Grid, lf::TopologyKind::Torus};
    spec.sides = {10, 12, 14, 16};
    spec.capacities = {3, 5};
    spec.speeds = {0.0005, 0.001, 0.002};

    spec.threads = 1;
    const lcore::ExplorationResult serial =
        lcore::explore(circuit.profile, lf::PhysicalParams{}, spec);
    spec.threads = 4;
    const lcore::ExplorationResult parallel =
        lcore::explore(circuit.profile, lf::PhysicalParams{}, spec);

    ASSERT_EQ(serial.points.size(), 48u);
    ASSERT_EQ(parallel.points.size(), serial.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        EXPECT_EQ(parallel.points[i].params, serial.points[i].params);
        // Bit-identical, not approximately equal.
        EXPECT_EQ(parallel.points[i].estimate.latency_us,
                  serial.points[i].estimate.latency_us);
    }
    EXPECT_EQ(parallel.best_index, serial.best_index);
    EXPECT_EQ(parallel.pareto_front, serial.pareto_front);
    EXPECT_GE(parallel.threads_used, 1u);
}

TEST(Explore, MatchesOneDimensionalSweepsOnSharedAxisPoints) {
    const ProfiledCircuit circuit = profiled("8bitadder");
    const lf::PhysicalParams base;
    const std::vector<int> sides = {10, 12, 14};

    const lcore::SweepResult sweep =
        lcore::sweep_fabric_sides(circuit.profile, base, sides);
    lcore::ExplorationSpec spec;
    spec.sides = sides;
    spec.threads = 4;
    const lcore::ExplorationResult explored =
        lcore::explore(circuit.profile, base, spec);

    ASSERT_EQ(explored.points.size(), sweep.points.size());
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
        EXPECT_EQ(explored.points[i].params, sweep.points[i].params);
        EXPECT_EQ(explored.points[i].estimate.latency_us,
                  sweep.points[i].estimate.latency_us);
    }
    EXPECT_EQ(explored.best_index, sweep.best_index);
}

TEST(Explore, BestPerTopologyAndParetoFront) {
    const ProfiledCircuit circuit = profiled("8bitadder");
    lcore::ExplorationSpec spec;
    spec.topologies = {lf::TopologyKind::Grid, lf::TopologyKind::Torus};
    spec.sides = {10, 14, 18};

    const lcore::ExplorationResult result =
        lcore::explore(circuit.profile, lf::PhysicalParams{}, spec);
    ASSERT_EQ(result.points.size(), 6u);
    ASSERT_EQ(result.best_per_topology.size(), 2u);
    EXPECT_EQ(result.best_per_topology[0].kind, lf::TopologyKind::Grid);
    EXPECT_EQ(result.best_per_topology[1].kind, lf::TopologyKind::Torus);
    for (const lcore::TopologyBest& best : result.best_per_topology) {
        const double best_latency = result.points[best.index].estimate.latency_us;
        for (std::size_t i = 0; i < result.points.size(); ++i) {
            if (result.points[i].params.topology != best.kind) continue;
            EXPECT_LE(best_latency, result.points[i].estimate.latency_us);
        }
    }

    // The front is area-ascending / latency strictly descending, and no
    // member is dominated by any other point.
    ASSERT_FALSE(result.pareto_front.empty());
    for (std::size_t f = 0; f + 1 < result.pareto_front.size(); ++f) {
        const auto& here = result.points[result.pareto_front[f]];
        const auto& next = result.points[result.pareto_front[f + 1]];
        EXPECT_LT(here.params.area(), next.params.area());
        EXPECT_GT(here.estimate.latency_us, next.estimate.latency_us);
    }
    for (const std::size_t index : result.pareto_front) {
        const auto& member = result.points[index];
        for (std::size_t i = 0; i < result.points.size(); ++i) {
            if (i == index) continue;
            const auto& other = result.points[i];
            const bool dominates =
                (other.params.area() <= member.params.area() &&
                 other.estimate.latency_us < member.estimate.latency_us) ||
                (other.params.area() < member.params.area() &&
                 other.estimate.latency_us <= member.estimate.latency_us);
            EXPECT_FALSE(dominates) << "front index " << index
                                    << " dominated by point " << i;
        }
    }
    // The global best is always on the front.
    ASSERT_TRUE(result.has_best());
    EXPECT_NE(std::find(result.pareto_front.begin(), result.pareto_front.end(),
                        result.best_index),
              result.pareto_front.end());
}

TEST(Explore, CancellationMidExplorationPublishesNothing) {
    const ProfiledCircuit circuit = profiled("8bitadder");
    lcore::ExplorationSpec spec;
    spec.sides = {10, 12, 14, 16, 18, 20};
    spec.threads = 2;

    std::atomic<int> seen{0};
    EXPECT_THROW(
        (void)lcore::explore(circuit.profile, lf::PhysicalParams{}, spec, {},
                             [&seen] {
                                 if (seen.fetch_add(1) >= 3) {
                                     throw lu::CancelledError("stop mid-exploration");
                                 }
                             }),
        lu::CancelledError);
    // The hook fired mid-run (not after every point): the throw aborted the
    // remaining points instead of letting the loop run dry.
    EXPECT_LT(seen.load(), 7);
}

TEST(Explore, PipelineExploreObservesRunControl) {
    lp::Pipeline pipe;
    const auto source = lp::parse_source("bench:ham3");
    lcore::ExplorationSpec spec;
    spec.sides = {8, 10, 12};

    lp::RunControl cancelled;
    cancelled.cancel.store(true);
    EXPECT_THROW((void)pipe.explore(source, spec, &cancelled), lu::CancelledError);

    // The cancellation fired before resolve, so nothing was cached; a real
    // run populates the cache and a second one reuses the profile.
    const lcore::ExplorationResult result = pipe.explore(source, spec);
    EXPECT_EQ(result.points.size(), 3u);
    EXPECT_EQ(pipe.cache_stats().circuit_misses, 1u);
    const lcore::ExplorationResult again = pipe.explore(source, spec);
    EXPECT_EQ(again.points.size(), 3u);
    EXPECT_GE(pipe.cache_stats().circuit_hits, 1u);
    EXPECT_EQ(pipe.cache_stats().circuit_misses, 1u);
}

TEST(Explore, AllSidesInfeasibleKeepsSweepErrorText) {
    const ProfiledCircuit circuit = profiled("8bitadder"); // 24 qubits
    lcore::ExplorationSpec spec;
    spec.sides = {1, 2, 3}; // 9 < 24: nothing can host the circuit
    try {
        (void)lcore::explore(circuit.profile, lf::PhysicalParams{}, spec);
        FAIL() << "expected InputError";
    } catch (const lu::InputError& error) {
        EXPECT_NE(std::string(error.what()).find(
                      "sweep has no feasible configurations"),
                  std::string::npos)
            << error.what();
    }
    EXPECT_THROW(
        (void)lcore::sweep_fabric_sides(circuit.profile, lf::PhysicalParams{}, {2, 3}),
        lu::InputError);
    // An explicitly empty axis list is also not a valid sweep.
    EXPECT_THROW(
        (void)lcore::sweep_fabric_sides(circuit.profile, lf::PhysicalParams{}, {}),
        lu::InputError);
}

// ------------------------------------------- overflow regression (satellite) --

TEST(Explore, LineSideAreaOverflowThrowsInsteadOfWrapping) {
    const ProfiledCircuit circuit = profiled("ham3");
    lf::PhysicalParams base;
    base.topology = lf::TopologyKind::Line;
    base.height = 1;
    // 50000^2 = 2.5e9 overflows int; the pre-fix code wrapped it silently.
    try {
        (void)lcore::sweep_fabric_sides(circuit.profile, base, {50000});
        FAIL() << "expected InputError";
    } catch (const lu::InputError& error) {
        EXPECT_NE(std::string(error.what()).find("50000"), std::string::npos)
            << error.what();
        EXPECT_NE(std::string(error.what()).find("int range"), std::string::npos)
            << error.what();
    }
    // A feasible large side on a non-line topology is untouched by the guard.
    const lcore::SweepResult grid_ok =
        lcore::sweep_fabric_sides(circuit.profile, lf::PhysicalParams{}, {50000});
    EXPECT_EQ(grid_ok.points.at(0).params.width, 50000);
}

TEST(Explore, TopologySweepLineAreaOverflowThrows) {
    const ProfiledCircuit circuit = profiled("ham3");
    lf::PhysicalParams base;
    base.width = 60000;
    base.height = 60000; // 3.6e9 ULBs: fine as a grid, unrepresentable as a row
    try {
        (void)lcore::sweep_topology(circuit.profile, base, {lf::TopologyKind::Line});
        FAIL() << "expected InputError";
    } catch (const lu::InputError& error) {
        // The 64-bit guard names the unrepresentable area; the pre-fix
        // narrowing wrapped silently and failed later in validate().
        EXPECT_NE(std::string(error.what()).find("3600000000"), std::string::npos)
            << error.what();
        EXPECT_NE(std::string(error.what()).find("int range"), std::string::npos)
            << error.what();
    }
    // Grid and torus at the same area are unaffected.
    const lcore::SweepResult ok = lcore::sweep_topology(
        circuit.profile, base, {lf::TopologyKind::Grid, lf::TopologyKind::Torus});
    EXPECT_EQ(ok.points.size(), 2u);
}

// ------------------------------------------- NaN-best regression (satellite) --

TEST(Sweep, BestSelectionSkipsNonFinitePoints) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();

    // The pre-fix incremental `<` fold let a NaN first point stick as best
    // forever (NaN < NaN and 5 < NaN are both false).
    std::size_t non_finite = 0;
    EXPECT_EQ(lcore::best_point_index(
                  {point_with_latency(nan), point_with_latency(5.0),
                   point_with_latency(3.0)},
                  &non_finite),
              2u);
    EXPECT_EQ(non_finite, 1u);

    EXPECT_EQ(lcore::best_point_index({point_with_latency(inf),
                                       point_with_latency(7.0)}),
              1u);
    EXPECT_EQ(lcore::best_point_index({point_with_latency(2.0),
                                       point_with_latency(nan)}),
              0u);
    EXPECT_EQ(lcore::best_point_index({point_with_latency(nan),
                                       point_with_latency(inf)},
                                      &non_finite),
              lcore::kNoBestPoint);
    EXPECT_EQ(non_finite, 2u);
    EXPECT_EQ(lcore::best_point_index({}), lcore::kNoBestPoint);
}

TEST(Sweep, NoFiniteBestIsExplicit) {
    lcore::SweepResult result;
    result.points = {point_with_latency(std::numeric_limits<double>::quiet_NaN())};
    result.best_index = lcore::best_point_index(result.points, &result.non_finite_points);
    EXPECT_FALSE(result.has_best());
    EXPECT_EQ(result.non_finite_points, 1u);
    EXPECT_THROW((void)result.best(), lu::InputError);

    // The JSON report omits best_index instead of pointing past the end.
    const std::string json = leqa::report::sweep_to_json(result);
    EXPECT_EQ(json.find("best_index"), std::string::npos) << json;
    EXPECT_NE(json.find("\"non_finite_points\":1"), std::string::npos) << json;
}

TEST(Sweep, SubnormalSpeedProducesNonFinitePointButSaneBest) {
    const ProfiledCircuit circuit = profiled("ham3");
    // v = 1e-310 makes d_uncongest = d_uncongest_v / v overflow to infinity;
    // the point is kept (flagged), never selected as best.
    const lcore::SweepResult result = lcore::sweep_speed(
        circuit.profile, lf::PhysicalParams{}, {1e-310, 0.001});
    ASSERT_EQ(result.points.size(), 2u);
    EXPECT_FALSE(std::isfinite(result.points[0].estimate.latency_us));
    ASSERT_TRUE(result.has_best());
    EXPECT_EQ(result.best_index, 1u);
    EXPECT_EQ(result.non_finite_points, 1u);
}

// ----------------------------------------------------- service + report ----

TEST(Explore, ServiceExploreJobMatchesDirectPipeline) {
    auto pipeline = std::make_shared<lp::Pipeline>();
    lcore::ExplorationSpec spec;
    spec.topologies = {lf::TopologyKind::Grid, lf::TopologyKind::Torus};
    spec.sides = {8, 10};
    spec.threads = 2;
    const lcore::ExplorationResult direct =
        pipeline->explore(lp::parse_source("bench:ham3"), spec);

    leqa::service::Service service(pipeline, {});
    leqa::service::ExploreRequest request;
    request.source = "bench:ham3";
    request.spec = spec;
    const leqa::service::JobResult result =
        service.submit_explore(std::move(request)).wait();
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    const auto& explored = std::get<lcore::ExplorationResult>(result.value());
    ASSERT_EQ(explored.points.size(), direct.points.size());
    for (std::size_t i = 0; i < explored.points.size(); ++i) {
        EXPECT_EQ(explored.points[i].estimate.latency_us,
                  direct.points[i].estimate.latency_us);
    }
    EXPECT_EQ(explored.best_index, direct.best_index);

    leqa::service::ExploreRequest bad;
    bad.source = "bench:nosuchbench";
    bad.spec = spec;
    const leqa::service::JobResult failure =
        service.submit_explore(std::move(bad)).wait();
    ASSERT_FALSE(failure.ok());
    EXPECT_EQ(failure.status().code(), lu::StatusCode::NotFound);
    EXPECT_EQ(failure.status().origin(), "explore");
}

TEST(Explore, ExplorationJsonCarriesBestAndPareto) {
    lp::Pipeline pipe;
    lcore::ExplorationSpec spec;
    spec.sides = {8, 10};
    spec.capacities = {3, 5};
    const lcore::ExplorationResult result =
        pipe.explore(lp::parse_source("bench:ham3"), spec);

    const std::string json = leqa::report::exploration_to_json(result);
    EXPECT_NE(json.find("\"points_total\":4"), std::string::npos) << json;
    EXPECT_NE(json.find("\"best_index\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"best_per_topology\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"pareto_front\""), std::string::npos) << json;
    EXPECT_NE(json.find("\"threads_used\""), std::string::npos) << json;
}

// Tests for the fabric module: physical parameters (Table 1) and the grid
// geometry (segments, XY routing, rings).
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "fabric/geometry.h"
#include "fabric/params.h"
#include "util/error.h"

namespace lf = leqa::fabric;
namespace lc = leqa::circuit;
using leqa::util::InputError;

// ----------------------------------------------------------------- params --

TEST(Params, Table1Defaults) {
    const lf::PhysicalParams params;
    EXPECT_DOUBLE_EQ(params.d_h_us, 5440.0);
    EXPECT_DOUBLE_EQ(params.d_t_us, 10940.0);
    EXPECT_DOUBLE_EQ(params.d_pauli_us, 5240.0);
    EXPECT_DOUBLE_EQ(params.d_cnot_us, 4930.0);
    EXPECT_EQ(params.nc, 5);
    EXPECT_DOUBLE_EQ(params.v, 0.001);
    EXPECT_EQ(params.width, 60);
    EXPECT_EQ(params.height, 60);
    EXPECT_DOUBLE_EQ(params.t_move_us, 100.0);
    EXPECT_EQ(params.area(), 3600);
    EXPECT_DOUBLE_EQ(params.one_qubit_routing_latency_us(), 200.0);
    EXPECT_NO_THROW(params.validate());
}

TEST(Params, DelayLookup) {
    const lf::PhysicalParams params;
    EXPECT_DOUBLE_EQ(params.delay_us(lc::GateKind::H), 5440.0);
    EXPECT_DOUBLE_EQ(params.delay_us(lc::GateKind::T), 10940.0);
    EXPECT_DOUBLE_EQ(params.delay_us(lc::GateKind::Tdg), 10940.0);
    EXPECT_DOUBLE_EQ(params.delay_us(lc::GateKind::X), 5240.0);
    EXPECT_DOUBLE_EQ(params.delay_us(lc::GateKind::Cnot), 4930.0);
    EXPECT_THROW((void)params.delay_us(lc::GateKind::Toffoli), InputError);
}

TEST(Params, ConfigRoundTrip) {
    lf::PhysicalParams params;
    params.d_t_us = 999.0;
    params.nc = 3;
    params.width = 40;
    params.v = 0.01;
    const auto parsed = lf::PhysicalParams::from_config(params.to_config());
    EXPECT_EQ(parsed, params);
}

TEST(Params, ConfigPartialOverride) {
    const auto params = lf::PhysicalParams::from_config("nc = 7\nwidth = 80\n");
    EXPECT_EQ(params.nc, 7);
    EXPECT_EQ(params.width, 80);
    EXPECT_DOUBLE_EQ(params.d_h_us, 5440.0); // untouched default
}

TEST(Params, ConfigDiagnostics) {
    EXPECT_THROW((void)lf::PhysicalParams::from_config("bogus_key = 1\n"), InputError);
    EXPECT_THROW((void)lf::PhysicalParams::from_config("nc\n"), InputError);
    EXPECT_THROW((void)lf::PhysicalParams::from_config("nc = abc\n"), InputError);
    EXPECT_THROW((void)lf::PhysicalParams::from_config("nc = 0\n"), InputError); // validate()
}

TEST(Params, ValidateRejectsNonPhysical) {
    lf::PhysicalParams params;
    params.v = 0.0;
    EXPECT_THROW(params.validate(), InputError);
    params = {};
    params.width = 0;
    EXPECT_THROW(params.validate(), InputError);
    params = {};
    params.d_cnot_us = -1.0;
    EXPECT_THROW(params.validate(), InputError);
}

TEST(Params, TopologyConfigRoundTrip) {
    lf::PhysicalParams params;
    params.topology = lf::TopologyKind::Torus;
    const std::string text = params.to_config();
    EXPECT_NE(text.find("topology = torus"), std::string::npos);
    EXPECT_EQ(lf::PhysicalParams::from_config(text), params);

    params.topology = lf::TopologyKind::Line;
    params.width = 3600;
    params.height = 1;
    EXPECT_EQ(lf::PhysicalParams::from_config(params.to_config()), params);

    // Defaults stay grid; unknown topologies are rejected.
    EXPECT_EQ(lf::PhysicalParams::from_config("nc = 3\n").topology,
              lf::TopologyKind::Grid);
    EXPECT_THROW((void)lf::PhysicalParams::from_config("topology = klein\n"),
                 InputError);
}

TEST(Params, LineTopologyRequiresUnitHeight) {
    lf::PhysicalParams params;
    params.topology = lf::TopologyKind::Line;
    EXPECT_THROW(params.validate(), InputError); // default 60x60 is not a row
    try {
        (void)lf::PhysicalParams::from_config("topology = line\n");
        FAIL() << "expected InputError";
    } catch (const InputError& e) {
        EXPECT_NE(std::string(e.what()).find("height = 1"), std::string::npos);
    }
    params.width = 3600;
    params.height = 1;
    EXPECT_NO_THROW(params.validate());
}

TEST(Params, FileRoundTrip) {
    lf::PhysicalParams params;
    params.height = 33;
    const std::string path = ::testing::TempDir() + "/leqa_params_test.cfg";
    params.save(path);
    EXPECT_EQ(lf::PhysicalParams::load(path), params);
    std::remove(path.c_str());
}

// --------------------------------------------------------------- geometry --

TEST(Geometry, UlbIndexRoundTrip) {
    const lf::FabricGeometry geo(7, 5);
    EXPECT_EQ(geo.num_ulbs(), 35u);
    for (int y = 0; y < 5; ++y) {
        for (int x = 0; x < 7; ++x) {
            const lf::UlbCoord c{x, y};
            EXPECT_EQ(geo.ulb_coord(geo.ulb_id(c)), c);
        }
    }
    EXPECT_THROW((void)geo.ulb_id({7, 0}), InputError);
    EXPECT_THROW((void)geo.ulb_coord(35), InputError);
}

TEST(Geometry, SegmentCountAndUniqueness) {
    const lf::FabricGeometry geo(4, 3);
    // horizontal: 3*3 = 9, vertical: 4*2 = 8.
    EXPECT_EQ(geo.num_segments(), 17u);
    std::set<lf::SegmentId> ids;
    for (int y = 0; y < 3; ++y) {
        for (int x = 0; x < 4; ++x) {
            for (const auto n : geo.neighbors({x, y})) {
                const auto id = geo.segment_between({x, y}, n);
                EXPECT_GE(id, 0);
                EXPECT_LT(static_cast<std::size_t>(id), geo.num_segments());
                ids.insert(id);
            }
        }
    }
    EXPECT_EQ(ids.size(), geo.num_segments()); // every segment reachable
}

TEST(Geometry, SegmentSymmetric) {
    const lf::FabricGeometry geo(5, 5);
    EXPECT_EQ(geo.segment_between({1, 1}, {2, 1}), geo.segment_between({2, 1}, {1, 1}));
    EXPECT_EQ(geo.segment_between({3, 2}, {3, 3}), geo.segment_between({3, 3}, {3, 2}));
    EXPECT_THROW((void)geo.segment_between({0, 0}, {2, 0}), InputError); // not adjacent
    EXPECT_THROW((void)geo.segment_between({0, 0}, {1, 1}), InputError); // diagonal
}

TEST(Geometry, XyRouteLengthEqualsManhattan) {
    const lf::FabricGeometry geo(10, 8);
    const lf::UlbCoord a{1, 2};
    const lf::UlbCoord b{7, 6};
    const auto route = geo.xy_route(a, b);
    EXPECT_EQ(route.size(), static_cast<std::size_t>(geo.manhattan(a, b)));
    EXPECT_EQ(geo.manhattan(a, b), 10);
    EXPECT_TRUE(geo.xy_route(a, a).empty());
    // Route in reverse direction also works (negative steps).
    EXPECT_EQ(geo.xy_route(b, a).size(), 10u);
}

TEST(Geometry, XyRouteSegmentsAreConnected) {
    const lf::FabricGeometry geo(6, 6);
    // The route's segments must be pairwise distinct for a shortest path.
    const auto route = geo.xy_route({0, 0}, {5, 5});
    const std::set<lf::SegmentId> unique(route.begin(), route.end());
    EXPECT_EQ(unique.size(), route.size());
}

TEST(Geometry, RingsCoverFabricExactlyOnce) {
    const lf::FabricGeometry geo(5, 4);
    const lf::UlbCoord center{2, 1};
    std::set<std::pair<int, int>> seen;
    for (int r = 0; r <= 6; ++r) {
        for (const auto c : geo.ring(center, r)) {
            EXPECT_TRUE(geo.in_bounds(c));
            const bool inserted = seen.insert({c.x, c.y}).second;
            EXPECT_TRUE(inserted) << "duplicate " << c.to_string() << " at r=" << r;
            // Every ring member is at L-infinity distance exactly r.
            EXPECT_EQ(std::max(std::abs(c.x - center.x), std::abs(c.y - center.y)), r);
        }
    }
    EXPECT_EQ(seen.size(), geo.num_ulbs());
}

TEST(Geometry, RingZeroIsCenter) {
    const lf::FabricGeometry geo(3, 3);
    const auto ring = geo.ring({1, 1}, 0);
    ASSERT_EQ(ring.size(), 1u);
    EXPECT_EQ(ring[0], (lf::UlbCoord{1, 1}));
}

TEST(Geometry, NeighborsClippedAtBoundary) {
    const lf::FabricGeometry geo(3, 3);
    EXPECT_EQ(geo.neighbors({0, 0}).size(), 2u);
    EXPECT_EQ(geo.neighbors({1, 0}).size(), 3u);
    EXPECT_EQ(geo.neighbors({1, 1}).size(), 4u);
}

TEST(Geometry, Midpoint) {
    const lf::FabricGeometry geo(10, 10);
    EXPECT_EQ(geo.midpoint({0, 0}, {4, 6}), (lf::UlbCoord{2, 3}));
    EXPECT_EQ(geo.midpoint({3, 3}, {3, 3}), (lf::UlbCoord{3, 3}));
    EXPECT_EQ(geo.midpoint({0, 0}, {1, 1}), (lf::UlbCoord{0, 0}));
}

TEST(Geometry, DegenerateOneByOne) {
    const lf::FabricGeometry geo(1, 1);
    EXPECT_EQ(geo.num_ulbs(), 1u);
    EXPECT_EQ(geo.num_segments(), 0u);
    EXPECT_TRUE(geo.xy_route({0, 0}, {0, 0}).empty());
}

TEST(Geometry, SingleRowFabric) {
    const lf::FabricGeometry geo(8, 1);
    EXPECT_EQ(geo.num_segments(), 7u);
    EXPECT_EQ(geo.xy_route({0, 0}, {7, 0}).size(), 7u);
}

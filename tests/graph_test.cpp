// Tests for the shared graph substrate: CSR builder semantics (sorting,
// parallel-edge merging, topological flag), the traversal kernels, the flat
// weighted undirected graph, and representation parity — the CSR-backed
// QODG against an independently built nested-vector adjacency on the bench
// suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "benchgen/suite.h"
#include "fabric/params.h"
#include "graph/csr.h"
#include "graph/weighted.h"
#include "qodg/qodg.h"
#include "synth/ft_synth.h"
#include "util/error.h"

namespace lg = leqa::graph;
namespace lc = leqa::circuit;
namespace lq = leqa::qodg;

TEST(Csr, EmptyGraph) {
    lg::CsrBuilder builder(0);
    const lg::CsrDigraph g = builder.build();
    EXPECT_EQ(g.num_nodes(), 0u);
    EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Csr, SortsSuccessorsAndMergesParallelEdges) {
    lg::CsrBuilder builder(4);
    builder.add_edge(0, 3);
    builder.add_edge(0, 1);
    builder.add_edge(0, 3); // parallel duplicate
    builder.add_edge(1, 2);
    const lg::CsrDigraph g = builder.build(/*merge_parallel=*/true);
    EXPECT_EQ(g.num_edges(), 3u);
    const auto succ = g.successors(0);
    ASSERT_EQ(succ.size(), 2u);
    EXPECT_EQ(succ[0], 1u);
    EXPECT_EQ(succ[1], 3u);
    EXPECT_EQ(g.out_degree(2), 0u);
}

TEST(Csr, KeepsParallelEdgesWhenAsked) {
    lg::CsrBuilder builder(2);
    builder.add_edge(0, 1);
    builder.add_edge(0, 1);
    EXPECT_EQ(builder.build(/*merge_parallel=*/false).num_edges(), 2u);
}

TEST(Csr, RejectsSelfLoopsAndOutOfRange) {
    lg::CsrBuilder builder(2);
    EXPECT_THROW(builder.add_edge(0, 0), leqa::util::InputError);
    EXPECT_THROW(builder.add_edge(0, 2), leqa::util::InputError);
}

TEST(Csr, TopologicalFlagTracksEdgeDirections) {
    lg::CsrBuilder forward(3);
    forward.add_edge(0, 1);
    forward.add_edge(1, 2);
    EXPECT_TRUE(forward.build().topologically_ordered());

    lg::CsrBuilder backward(3);
    backward.add_edge(2, 1);
    const lg::CsrDigraph g = backward.build();
    EXPECT_FALSE(g.topologically_ordered());
    const std::vector<double> delays(3, 1.0);
    EXPECT_THROW((void)lg::longest_path(g, delays, 0), leqa::util::InputError);
    EXPECT_THROW((void)lg::downstream_delay(g, delays), leqa::util::InputError);
}

TEST(Csr, InDegrees) {
    lg::CsrBuilder builder(4);
    builder.add_edge(0, 1);
    builder.add_edge(0, 2);
    builder.add_edge(1, 3);
    builder.add_edge(2, 3);
    const auto degrees = builder.build().in_degrees();
    ASSERT_EQ(degrees.size(), 4u);
    EXPECT_EQ(degrees[0], 0u);
    EXPECT_EQ(degrees[1], 1u);
    EXPECT_EQ(degrees[3], 2u);
}

TEST(Csr, LongestPathDiamond) {
    // 0 -> {1, 2} -> 3 with a heavy node 2.
    lg::CsrBuilder builder(4);
    builder.add_edge(0, 1);
    builder.add_edge(0, 2);
    builder.add_edge(1, 3);
    builder.add_edge(2, 3);
    const lg::CsrDigraph g = builder.build();
    const std::vector<double> delays{0.0, 1.0, 5.0, 2.0};
    const auto lp = lg::longest_path(g, delays, 0);
    EXPECT_DOUBLE_EQ(lp.distance[3], 7.0);
    const auto path = lg::extract_path(lp, 0, 3);
    ASSERT_EQ(path.size(), 3u);
    EXPECT_EQ(path[1], 2u);

    const auto downstream = lg::downstream_delay(g, delays);
    EXPECT_DOUBLE_EQ(downstream[0], 7.0);
    EXPECT_DOUBLE_EQ(downstream[1], 3.0);
}

TEST(Csr, UnreachableNodesKeepNegativeDistance) {
    lg::CsrBuilder builder(3);
    builder.add_edge(1, 2); // node 0 reaches nothing
    const lg::CsrDigraph g = builder.build();
    const std::vector<double> delays(3, 1.0);
    const auto lp = lg::longest_path(g, delays, 0);
    EXPECT_LT(lp.distance[1], 0.0);
    EXPECT_THROW((void)lg::extract_path(lp, 0, 2), leqa::util::InputError);
}

TEST(WeightedUndigraph, AccumulatesPairsEitherOrientation) {
    const std::vector<std::pair<lg::NodeId, lg::NodeId>> pairs{
        {0, 1}, {1, 0}, {2, 0}, {3, 2}};
    const auto g = lg::WeightedUndigraph::from_pairs(4, pairs);
    EXPECT_EQ(g.num_edges(), 3u);
    EXPECT_EQ(g.weight_between(0, 1), 2u);
    EXPECT_EQ(g.weight_between(1, 0), 2u);
    EXPECT_EQ(g.weight_between(2, 3), 1u);
    EXPECT_EQ(g.weight_between(1, 3), 0u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.adjacent_weight(0), 3u);
}

TEST(WeightedUndigraph, NeighborsSortedAndAlignedWithWeights) {
    const std::vector<std::pair<lg::NodeId, lg::NodeId>> pairs{
        {5, 2}, {2, 0}, {2, 7}, {2, 7}, {2, 1}};
    const auto g = lg::WeightedUndigraph::from_pairs(8, pairs);
    const auto hood = g.neighbors(2);
    ASSERT_EQ(hood.size(), 4u);
    EXPECT_TRUE(std::is_sorted(hood.begin(), hood.end()));
    const auto weights = g.neighbor_weights(2);
    for (std::size_t k = 0; k < hood.size(); ++k) {
        EXPECT_EQ(weights[k], g.weight_between(2, hood[k]));
    }
    EXPECT_EQ(g.weight_between(2, 7), 2u);
}

TEST(WeightedUndigraph, EdgesSortedUnique) {
    const std::vector<std::pair<lg::NodeId, lg::NodeId>> pairs{
        {3, 1}, {1, 3}, {0, 2}, {1, 2}};
    const auto g = lg::WeightedUndigraph::from_pairs(4, pairs);
    const auto& edges = g.edges();
    ASSERT_EQ(edges.size(), 3u);
    for (std::size_t k = 0; k + 1 < edges.size(); ++k) {
        EXPECT_TRUE(edges[k].i < edges[k + 1].i ||
                    (edges[k].i == edges[k + 1].i && edges[k].j < edges[k + 1].j));
    }
    for (const auto& e : edges) EXPECT_LT(e.i, e.j);
}

// ---------------------------------------------------------------- parity --

namespace {

/// The pre-refactor QODG representation, rebuilt independently: nested
/// vector-of-vectors adjacency with per-gate sorted/deduplicated
/// predecessor merging.  The CSR-backed Qodg must match it exactly.
struct ReferenceQodg {
    std::vector<std::vector<lq::NodeId>> out_edges;
    std::size_t edge_count = 0;

    explicit ReferenceQodg(const lc::Circuit& circ) {
        const std::size_t n_gates = circ.size();
        out_edges.resize(n_gates + 2);
        const auto end_id = static_cast<lq::NodeId>(n_gates + 1);
        std::vector<lq::NodeId> last(circ.num_qubits(), 0);
        std::vector<lq::NodeId> preds;
        for (std::size_t i = 0; i < n_gates; ++i) {
            const auto me = static_cast<lq::NodeId>(i + 1);
            const lc::Gate& gate = circ.gate(i);
            preds.clear();
            for (const lc::Qubit q : gate.controls) preds.push_back(last[q]);
            for (const lc::Qubit q : gate.targets) preds.push_back(last[q]);
            std::sort(preds.begin(), preds.end());
            preds.erase(std::unique(preds.begin(), preds.end()), preds.end());
            for (const lq::NodeId p : preds) {
                out_edges[p].push_back(me);
                ++edge_count;
            }
            for (const lc::Qubit q : gate.controls) last[q] = me;
            for (const lc::Qubit q : gate.targets) last[q] = me;
        }
        std::vector<lq::NodeId> tails(last.begin(), last.end());
        if (circ.num_qubits() == 0) tails.push_back(0);
        std::sort(tails.begin(), tails.end());
        tails.erase(std::unique(tails.begin(), tails.end()), tails.end());
        for (const lq::NodeId t : tails) {
            out_edges[t].push_back(end_id);
            ++edge_count;
        }
    }

    [[nodiscard]] std::vector<double> longest_distances(
        const std::vector<double>& delays) const {
        std::vector<double> distance(out_edges.size(), -1.0);
        distance[0] = delays[0];
        for (lq::NodeId u = 0; u < out_edges.size(); ++u) {
            if (distance[u] < 0.0) continue;
            for (const lq::NodeId v : out_edges[u]) {
                distance[v] = std::max(distance[v], distance[u] + delays[v]);
            }
        }
        return distance;
    }
};

/// Small-but-structured FT circuits: the smallest real suite entries plus
/// ham3 (Figure 2).
std::vector<lc::Circuit> parity_circuits() {
    std::vector<lc::Circuit> circuits;
    circuits.push_back(leqa::synth::ft_synthesize(leqa::benchgen::ham3()).circuit);
    for (const char* name : {"8bitadder", "gf2^16mult", "hwb15ps"}) {
        circuits.push_back(leqa::benchgen::make_ft_benchmark(name).circuit);
    }
    return circuits;
}

} // namespace

TEST(GraphParity, CsrQodgMatchesNestedVectorReferenceOnBenchSuite) {
    for (const lc::Circuit& circ : parity_circuits()) {
        const lq::Qodg qodg(circ);
        const ReferenceQodg reference(circ);

        // Identical merged edge counts.
        ASSERT_EQ(qodg.num_edges(), reference.edge_count) << circ.name();

        // Identical successor sets node by node.
        for (lq::NodeId u = 0; u < qodg.num_nodes(); ++u) {
            std::vector<lq::NodeId> expected = reference.out_edges[u];
            std::sort(expected.begin(), expected.end());
            const auto actual = qodg.successors(u);
            ASSERT_EQ(std::vector<lq::NodeId>(actual.begin(), actual.end()), expected)
                << circ.name() << " node " << u;
        }

        // Identical longest-path distances under the unit and the FT delay
        // models, and a critical census consistent with the path.
        for (const bool unit : {true, false}) {
            const leqa::fabric::PhysicalParams params;
            const auto delays = qodg.node_delays([&](lc::GateKind kind) {
                return unit ? 1.0 : params.delay_us(kind);
            });
            const auto lp = qodg.longest_path(delays);
            const auto expected = reference.longest_distances(delays);
            ASSERT_EQ(lp.distance.size(), expected.size());
            for (std::size_t u = 0; u < expected.size(); ++u) {
                ASSERT_NEAR(lp.distance[u], expected[u], 1e-9)
                    << circ.name() << " node " << u;
            }

            const auto path = qodg.critical_path(lp);
            const auto census = qodg.census(path);
            double path_delay = 0.0;
            for (const auto id : path) path_delay += delays[id];
            EXPECT_NEAR(path_delay, lp.length, 1e-6) << circ.name();
            std::size_t census_total = 0;
            for (const auto count : census.by_kind) census_total += count;
            EXPECT_EQ(census_total, census.total_ops);
            EXPECT_EQ(census.total_ops, path.size() - 2);
        }
    }
}

// Tests for the interaction intensity graph: weights, degrees, zone areas
// (Eq. 6), and the weighted average zone area B (Eq. 7).
#include <gtest/gtest.h>

#include "iig/iig.h"
#include "util/error.h"
#include "util/rng.h"

namespace lc = leqa::circuit;
namespace li = leqa::iig;

TEST(Iig, EmptyCircuit) {
    const lc::Circuit circ(3);
    const li::Iig iig(circ);
    EXPECT_EQ(iig.num_qubits(), 3u);
    EXPECT_EQ(iig.num_edges(), 0u);
    EXPECT_EQ(iig.degree(0), 0u);
    EXPECT_DOUBLE_EQ(iig.zone_area(0), 1.0);       // B_i = M_i + 1 = 1
    EXPECT_DOUBLE_EQ(iig.average_zone_area(), 1.0); // no-interaction fallback
}

TEST(Iig, OneQubitGatesAddNoEdges) {
    lc::Circuit circ(2);
    circ.h(0).t(0).x(1).tdg(1);
    const li::Iig iig(circ);
    EXPECT_EQ(iig.num_edges(), 0u);
    EXPECT_EQ(iig.total_adjacent_weight(), 0u);
}

TEST(Iig, WeightsCountTwoQubitOps) {
    lc::Circuit circ(3);
    circ.cnot(0, 1).cnot(1, 0).cnot(0, 2); // (0,1) twice, (0,2) once
    const li::Iig iig(circ);
    EXPECT_EQ(iig.num_edges(), 2u);
    EXPECT_EQ(iig.edge_weight(0, 1), 2u);
    EXPECT_EQ(iig.edge_weight(1, 0), 2u); // undirected
    EXPECT_EQ(iig.edge_weight(0, 2), 1u);
    EXPECT_EQ(iig.edge_weight(1, 2), 0u);
    EXPECT_EQ(iig.degree(0), 2u);
    EXPECT_EQ(iig.degree(1), 1u);
    EXPECT_EQ(iig.adjacent_weight(0), 3u);
    EXPECT_EQ(iig.adjacent_weight(1), 2u);
}

TEST(Iig, SelfLoopQueryRejected) {
    const lc::Circuit circ(2);
    const li::Iig iig(circ);
    EXPECT_THROW((void)iig.edge_weight(1, 1), leqa::util::InputError);
}

TEST(Iig, ZoneAreaEquation6) {
    lc::Circuit circ(4);
    circ.cnot(0, 1).cnot(0, 2).cnot(0, 3); // qubit 0 has M = 3
    const li::Iig iig(circ);
    EXPECT_DOUBLE_EQ(iig.zone_area(0), 4.0); // M + 1
    EXPECT_DOUBLE_EQ(iig.zone_area(1), 2.0);
}

TEST(Iig, AverageZoneAreaEquation7) {
    // Star: center qubit 0 interacts once with each of 3 leaves.
    // W_0 = 3, B_0 = 4; W_leaf = 1, B_leaf = 2.
    // B = (3*4 + 3*(1*2)) / (3 + 3) = 18/6 = 3.
    lc::Circuit circ(4);
    circ.cnot(0, 1).cnot(0, 2).cnot(0, 3);
    const li::Iig iig(circ);
    EXPECT_DOUBLE_EQ(iig.average_zone_area(), 3.0);
}

TEST(Iig, WeightedAverageFavorsHeavyQubits) {
    // Pair (0,1) with weight 10 (B_i = 2 each); pair (2,3),(2,4),(3,4)
    // forming a triangle with weight 1 each (B_i = 3 each).
    lc::Circuit circ(5);
    for (int i = 0; i < 10; ++i) circ.cnot(0, 1);
    circ.cnot(2, 3).cnot(2, 4).cnot(3, 4);
    const li::Iig iig(circ);
    // Weighted: (10*2 + 10*2 + 2*3 + 2*3 + 2*3) / (10 + 10 + 2 + 2 + 2)
    //         = (40 + 18) / 26 = 58/26.
    EXPECT_NEAR(iig.average_zone_area(), 58.0 / 26.0, 1e-12);
}

TEST(Iig, TotalAdjacentWeightIsTwiceEdgeWeight) {
    leqa::util::Rng rng(17);
    lc::Circuit circ(8);
    for (int g = 0; g < 100; ++g) {
        const auto picks = rng.sample_without_replacement(8, 2);
        circ.cnot(static_cast<lc::Qubit>(picks[0]), static_cast<lc::Qubit>(picks[1]));
    }
    const li::Iig iig(circ);
    std::uint64_t edge_sum = 0;
    for (const auto& e : iig.edges()) edge_sum += e.weight;
    EXPECT_EQ(edge_sum, 100u);
    EXPECT_EQ(iig.total_adjacent_weight(), 200u);
}

TEST(Iig, SwapCountsAsTwoQubitInteraction) {
    lc::Circuit circ(2);
    circ.swap(0, 1);
    const li::Iig iig(circ);
    EXPECT_EQ(iig.edge_weight(0, 1), 1u);
}

TEST(Iig, MultiQubitGatesAddAllPairs) {
    // Pre-FT-synthesis circuits may contain Toffolis; the documented
    // generalization adds weight to every touched pair.
    lc::Circuit circ(3);
    circ.toffoli(0, 1, 2);
    const li::Iig iig(circ);
    EXPECT_EQ(iig.num_edges(), 3u);
    EXPECT_EQ(iig.edge_weight(0, 1), 1u);
    EXPECT_EQ(iig.edge_weight(0, 2), 1u);
    EXPECT_EQ(iig.edge_weight(1, 2), 1u);
}

TEST(Iig, EdgesSortedAndConsistent) {
    leqa::util::Rng rng(23);
    lc::Circuit circ(10);
    for (int g = 0; g < 50; ++g) {
        const auto picks = rng.sample_without_replacement(10, 2);
        circ.cnot(static_cast<lc::Qubit>(picks[0]), static_cast<lc::Qubit>(picks[1]));
    }
    const li::Iig iig(circ);
    const auto& edges = iig.edges();
    for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
        EXPECT_TRUE(edges[i].i < edges[i + 1].i ||
                    (edges[i].i == edges[i + 1].i && edges[i].j < edges[i + 1].j));
    }
    for (const auto& e : edges) {
        EXPECT_LT(e.i, e.j);
        EXPECT_EQ(iig.edge_weight(e.i, e.j), e.weight);
    }
}

TEST(Iig, DotExport) {
    lc::Circuit circ(2);
    circ.cnot(0, 1);
    const li::Iig iig(circ);
    const std::string dot = iig.to_dot(circ);
    EXPECT_NE(dot.find("graph iig"), std::string::npos);
    EXPECT_NE(dot.find("--"), std::string::npos);
    EXPECT_NE(dot.find("label=\"1\""), std::string::npos);
}

// Integration tests: the full pipeline (generate -> parse round-trip -> FT
// synthesis -> QODG/IIG -> QSPR actual vs LEQA estimate) on real suite
// benchmarks, exercising every module together the way the benches do.
#include <gtest/gtest.h>

#include "benchgen/gf2_mult.h"
#include "benchgen/suite.h"
#include "core/calibrate.h"
#include "core/leqa.h"
#include "fabric/params.h"
#include "iig/iig.h"
#include "parser/qasm.h"
#include "parser/real.h"
#include "qodg/qodg.h"
#include "qspr/qspr.h"
#include "sim/classical.h"
#include "synth/ft_synth.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace lb = leqa::benchgen;
namespace lc = leqa::circuit;
namespace lcore = leqa::core;
namespace lf = leqa::fabric;
namespace lp = leqa::parser;
namespace lq = leqa::qspr;
namespace ls = leqa::synth;

TEST(Integration, BenchmarkSurvivesNetlistRoundTrip) {
    // generate -> write qasm -> parse -> FT synth must equal the direct
    // path; the same through .real (pre-FT circuits are classical).
    const auto original = lb::make_benchmark("gf2^16mult");
    const auto via_qasm = lp::parse_qasm(lp::write_qasm(original));
    EXPECT_TRUE(original.same_structure(via_qasm));
    const auto via_real = lp::parse_real(lp::write_real(original));
    EXPECT_TRUE(original.same_structure(via_real));

    const auto direct = ls::ft_synthesize(original).circuit;
    const auto roundtrip = ls::ft_synthesize(via_qasm).circuit;
    EXPECT_TRUE(direct.same_structure(roundtrip));
}

TEST(Integration, EstimateWithinBandOfActualOnSmallSuite) {
    // The Table 2 claim in miniature: after calibrating v on the three
    // smallest benchmarks, LEQA must track QSPR within a conservative 10%
    // on every benchmark up to 7k ops (the bench covers the full suite).
    lf::PhysicalParams params;
    const lq::QsprMapper mapper(params);

    std::vector<lc::Circuit> training;
    for (const std::string name : {"8bitadder", "gf2^16mult", "hwb15ps"}) {
        training.push_back(lb::make_ft_benchmark(name).circuit);
    }
    std::vector<lcore::CalibrationSample> samples;
    for (const auto& circ : training) {
        samples.push_back({&circ, mapper.map(circ).latency_us});
    }
    const auto calibration = lcore::calibrate_v(samples, params);
    EXPECT_LT(calibration.mean_abs_rel_error, 0.05);
    params.v = calibration.v;

    const lcore::LeqaEstimator estimator(params);
    for (const auto& spec : lb::paper_suite()) {
        if (spec.paper_ops > 7000) continue;
        const auto ft = lb::make_ft_benchmark(spec.name).circuit;
        const double actual = mapper.map(ft).latency_us;
        const double estimate = estimator.estimate(ft).latency_us;
        EXPECT_NEAR(estimate / actual, 1.0, 0.10) << spec.name;
    }
}

TEST(Integration, EstimatorUsesMappedCriticalPath) {
    // Algorithm 1 line 19: the critical path must be computed AFTER adding
    // routing latencies.  Build a circuit where the op-delay-only critical
    // path differs from the routing-aware one: a chain of CNOTs (cheap op,
    // expensive routing) racing a chain of T gates (expensive op, cheap
    // routing).
    lc::Circuit circ(12);
    // Branch A: 6 T gates on qubit 0 (65,640 us of gate delay).
    for (int i = 0; i < 6; ++i) circ.t(0);
    // Branch B: 12 CNOTs in a chain over qubits 1..11 with rich interaction
    // so routing latency is material (59,160 us gate delay + routing).
    for (int i = 0; i < 12; ++i) {
        circ.cnot(static_cast<lc::Qubit>(1 + (i % 10)),
                  static_cast<lc::Qubit>(2 + (i % 10)));
    }
    lf::PhysicalParams slow_routing;
    slow_routing.v = 1e-4; // makes L_CNOT large
    const auto slow = lcore::LeqaEstimator(slow_routing).estimate(circ);
    lf::PhysicalParams fast_routing;
    fast_routing.v = 1.0; // routing nearly free
    const auto fast = lcore::LeqaEstimator(fast_routing).estimate(circ);
    // With slow routing the CNOT chain dominates; with fast routing the
    // critical path can shift toward the T chain.  At minimum, the CNOT
    // count on the critical path must not increase when routing gets fast.
    EXPECT_GE(slow.critical_cnots, fast.critical_cnots);
    EXPECT_GT(slow.latency_us, fast.latency_us);
}

TEST(Integration, FabricSizeTrendAgreesBetweenTools) {
    // The fabric_sizer use case: both tools should agree that a cramped
    // fabric is slower than a comfortable one.
    const auto ft = lb::make_ft_benchmark("8bitadder").circuit; // 24 qubits
    lf::PhysicalParams cramped;
    cramped.width = 5;
    cramped.height = 5;
    lf::PhysicalParams comfy;
    comfy.width = 30;
    comfy.height = 30;
    const double actual_cramped = lq::QsprMapper(cramped).map(ft).latency_us;
    const double actual_comfy = lq::QsprMapper(comfy).map(ft).latency_us;
    const double est_cramped = lcore::LeqaEstimator(cramped).estimate(ft).latency_us;
    const double est_comfy = lcore::LeqaEstimator(comfy).estimate(ft).latency_us;
    EXPECT_GE(actual_cramped, actual_comfy * 0.999);
    EXPECT_GE(est_cramped, est_comfy * 0.999);
}

TEST(Integration, SuiteBenchmarksAreFtCleanAndSized) {
    // Every suite circuit must synthesize to a valid FT netlist whose size
    // matches the paper (exactly for gf2/surrogates; adder is constructive).
    for (const auto& spec : lb::paper_suite()) {
        if (spec.paper_ops > 70000) continue; // keep runtime modest
        const auto ft = lb::make_ft_benchmark(spec.name);
        EXPECT_TRUE(ft.circuit.is_ft()) << spec.name;
        EXPECT_EQ(ft.circuit.num_qubits(), spec.paper_qubits) << spec.name;
        if (spec.kind != lb::BenchmarkKind::Adder) {
            EXPECT_EQ(ft.circuit.size(), spec.paper_ops) << spec.name;
        }
        // All suite circuits fit the paper's 60x60 fabric.
        EXPECT_LE(ft.circuit.num_qubits(), 3600u) << spec.name;
    }
}

TEST(Integration, ClassicalBenchmarksStayFunctionalThroughSynthesis) {
    // The gf2 multiplier must still compute the right product after the
    // Toffoli-to-FT stage is round-tripped through keep_toffoli mode (the
    // FT network itself is verified at the unitary level in synth tests).
    const auto circ = lb::make_benchmark("gf2^16mult");
    ls::FtSynthOptions keep;
    keep.keep_toffoli = true;
    const auto staged = ls::ft_synthesize(circ, keep).circuit;
    EXPECT_TRUE(staged.is_classical());
    leqa::util::Rng rng(8);
    for (int trial = 0; trial < 5; ++trial) {
        const std::uint64_t a = rng.next() & 0xFFFF;
        const std::uint64_t b = rng.next() & 0xFFFF;
        leqa::sim::BasisState state(staged.num_qubits());
        state.set_slice(0, 16, a);
        state.set_slice(16, 16, b);
        leqa::sim::run_classical(staged, state);
        EXPECT_EQ(state.slice(32, 16),
                  lb::gf2_mult_reference(16, lb::Gf2PolyForm::Pentanomial, a, b));
    }
}

TEST(Integration, EstimatorAndMapperShareCriticalFloor) {
    // Both tools bound the latency from below by the pure gate-delay
    // critical path (no routing model can make a circuit faster).
    const auto ft = lb::make_ft_benchmark("hwb15ps").circuit;
    const lf::PhysicalParams params;
    const leqa::qodg::Qodg graph(ft);
    const auto delays = graph.node_delays(
        [&](lc::GateKind kind) { return params.delay_us(kind); });
    const double floor_us = graph.longest_path(delays).length;

    EXPECT_GE(lq::QsprMapper(params).map(ft).latency_us, floor_us * 0.9999);
    EXPECT_GE(lcore::LeqaEstimator(params).estimate(ft).latency_us, floor_us * 0.9999);
}

TEST(Integration, LeqaRuntimeFarBelowQsprOnMidSize) {
    // The Table 3 claim in miniature (absolute runtimes are noisy in CI,
    // so only a coarse factor is asserted).
    const auto ft = lb::make_ft_benchmark("gf2^50mult").circuit; // 37k ops
    const lf::PhysicalParams params;
    leqa::util::Stopwatch qspr_clock;
    (void)lq::QsprMapper(params).map(ft);
    const double qspr_s = qspr_clock.seconds();
    leqa::util::Stopwatch leqa_clock;
    (void)lcore::LeqaEstimator(params).estimate(ft);
    const double leqa_s = leqa_clock.seconds();
    EXPECT_GT(qspr_s / leqa_s, 3.0);
}

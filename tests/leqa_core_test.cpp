// Tests for the LEQA estimator: coverage probabilities (Eq. 5), expected
// surfaces (Eqs. 3-4), the end-to-end Algorithm 1, and the v calibrator.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/calibrate.h"
#include "core/leqa.h"
#include "synth/ft_synth.h"
#include "util/error.h"
#include "util/rng.h"

namespace lc = leqa::circuit;
namespace lf = leqa::fabric;
namespace lcore = leqa::core;
using leqa::util::InputError;

namespace {

lf::PhysicalParams paper_params() { return lf::PhysicalParams{}; }

/// Random FT circuit with a controllable interaction richness.
lc::Circuit random_ft_circuit(std::size_t qubits, std::size_t gates, std::uint64_t seed) {
    leqa::util::Rng rng(seed);
    lc::Circuit circ(qubits);
    for (std::size_t g = 0; g < gates; ++g) {
        const auto picks = rng.sample_without_replacement(qubits, 2);
        switch (rng.index(4)) {
            case 0: circ.h(static_cast<lc::Qubit>(picks[0])); break;
            case 1: circ.t(static_cast<lc::Qubit>(picks[0])); break;
            default:
                circ.cnot(static_cast<lc::Qubit>(picks[0]),
                          static_cast<lc::Qubit>(picks[1]));
                break;
        }
    }
    return circ;
}

} // namespace

// ------------------------------------------------------ coverage (Eq. 5) --

TEST(Coverage, ZoneSideComputation) {
    EXPECT_EQ(lcore::LeqaEstimator::zone_side(1.0, 60, 60), 1);
    EXPECT_EQ(lcore::LeqaEstimator::zone_side(4.0, 60, 60), 2);
    EXPECT_EQ(lcore::LeqaEstimator::zone_side(5.0, 60, 60), 3);  // ceil(sqrt(5))
    EXPECT_EQ(lcore::LeqaEstimator::zone_side(10000.0, 60, 60), 60); // clamped
    EXPECT_EQ(lcore::LeqaEstimator::zone_side(0.0, 60, 60), 1);      // floor clamp
    EXPECT_EQ(lcore::LeqaEstimator::zone_side(9.0, 2, 8), 2);        // min(a,b) clamp
}

TEST(Coverage, ProbabilityBounds) {
    for (const int s : {1, 3, 7, 10}) {
        for (int x = 1; x <= 10; ++x) {
            for (int y = 1; y <= 10; ++y) {
                const double p = lcore::LeqaEstimator::coverage_probability(x, y, 10, 10, s);
                EXPECT_GE(p, 0.0);
                EXPECT_LE(p, 1.0);
            }
        }
    }
}

TEST(Coverage, FullZoneCoversEverything) {
    // s = a = b: the zone is the whole fabric, every ULB covered surely.
    for (int x = 1; x <= 5; ++x) {
        for (int y = 1; y <= 5; ++y) {
            EXPECT_DOUBLE_EQ(lcore::LeqaEstimator::coverage_probability(x, y, 5, 5, 5), 1.0);
        }
    }
}

TEST(Coverage, UnitZoneIsUniform) {
    // s = 1: one ULB zone placed uniformly covers each cell with 1/A.
    for (int x = 1; x <= 4; ++x) {
        for (int y = 1; y <= 3; ++y) {
            EXPECT_NEAR(lcore::LeqaEstimator::coverage_probability(x, y, 4, 3, 1),
                        1.0 / 12.0, 1e-12);
        }
    }
}

TEST(Coverage, CenterMoreLikelyThanCorner) {
    const double corner = lcore::LeqaEstimator::coverage_probability(1, 1, 11, 11, 3);
    const double center = lcore::LeqaEstimator::coverage_probability(6, 6, 11, 11, 3);
    EXPECT_GT(center, corner);
}

TEST(Coverage, SymmetricUnderReflection) {
    const int a = 9, b = 7, s = 3;
    for (int x = 1; x <= a; ++x) {
        for (int y = 1; y <= b; ++y) {
            const double p = lcore::LeqaEstimator::coverage_probability(x, y, a, b, s);
            const double p_mirror_x =
                lcore::LeqaEstimator::coverage_probability(a - x + 1, y, a, b, s);
            const double p_mirror_y =
                lcore::LeqaEstimator::coverage_probability(x, b - y + 1, a, b, s);
            EXPECT_NEAR(p, p_mirror_x, 1e-12);
            EXPECT_NEAR(p, p_mirror_y, 1e-12);
        }
    }
}

TEST(Coverage, TotalExpectedCoverageEqualsZoneArea) {
    // Sum over all ULBs of P_xy = expected number of covered cells = s^2
    // (every placement covers exactly s^2 cells).
    for (const int s : {1, 2, 3, 5}) {
        const int a = 8, b = 6;
        double sum = 0.0;
        for (int x = 1; x <= a; ++x) {
            for (int y = 1; y <= b; ++y) {
                sum += lcore::LeqaEstimator::coverage_probability(x, y, a, b, s);
            }
        }
        EXPECT_NEAR(sum, static_cast<double>(s) * s, 1e-9) << "s=" << s;
    }
}

TEST(Coverage, InvalidArguments) {
    EXPECT_THROW((void)lcore::LeqaEstimator::coverage_probability(0, 1, 5, 5, 2), InputError);
    EXPECT_THROW((void)lcore::LeqaEstimator::coverage_probability(6, 1, 5, 5, 2), InputError);
    EXPECT_THROW((void)lcore::LeqaEstimator::coverage_probability(1, 1, 5, 5, 6), InputError);
    EXPECT_THROW((void)lcore::LeqaEstimator::coverage_probability(1, 1, 5, 5, 0), InputError);
}

// ----------------------------------------------- surfaces (Eqs. 3 and 4) --

TEST(Surfaces, SumOverQEqualsFabricArea) {
    // Eq. 3: sum_{q=0..Q} E[S_q] = A.
    const int a = 12, b = 9, s = 3;
    std::vector<double> coverage;
    for (int x = 1; x <= a; ++x) {
        for (int y = 1; y <= b; ++y) {
            coverage.push_back(lcore::LeqaEstimator::coverage_probability(x, y, a, b, s));
        }
    }
    for (const long long q_total : {1LL, 5LL, 23LL}) {
        double sum = 0.0;
        for (long long q = 0; q <= q_total; ++q) {
            sum += lcore::LeqaEstimator::expected_surface(coverage, q_total, q);
        }
        EXPECT_NEAR(sum, static_cast<double>(a * b), 1e-8) << "Q=" << q_total;
    }
}

TEST(Surfaces, ZeroZonesLeaveFabricEmpty) {
    const std::vector<double> coverage(20, 0.1);
    EXPECT_NEAR(lcore::LeqaEstimator::expected_surface(coverage, 0, 0), 20.0, 1e-12);
    EXPECT_THROW((void)lcore::LeqaEstimator::expected_surface(coverage, 0, 1), InputError);
}

TEST(Surfaces, LargeQStaysFinite) {
    const std::vector<double> coverage(100, 0.004);
    for (long long q = 0; q <= 20; ++q) {
        const double s = lcore::LeqaEstimator::expected_surface(coverage, 3145, q);
        EXPECT_TRUE(std::isfinite(s));
        EXPECT_GE(s, 0.0);
    }
}

// --------------------------------------------------- estimator (Alg. 1) --

TEST(Estimator, RejectsNonFtCircuit) {
    lc::Circuit circ(3);
    circ.toffoli(0, 1, 2);
    const lcore::LeqaEstimator estimator(paper_params());
    EXPECT_THROW((void)estimator.estimate(circ), InputError);
}

TEST(Estimator, OneQubitChainMatchesHandComputation) {
    // No CNOTs: D = sum of (d_g + 2 Tmove) along the chain.
    lc::Circuit circ(1);
    circ.h(0).t(0).h(0);
    const auto params = paper_params();
    const lcore::LeqaEstimator estimator(params);
    const auto estimate = estimator.estimate(circ);
    const double expected = (5440.0 + 200.0) + (10940.0 + 200.0) + (5440.0 + 200.0);
    EXPECT_NEAR(estimate.latency_us, expected, 1e-9);
    EXPECT_DOUBLE_EQ(estimate.l_cnot_avg_us, 0.0); // no interactions
    EXPECT_EQ(estimate.critical_census.total_ops, 3u);
    EXPECT_EQ(estimate.critical_one_qubit, 3u);
}

TEST(Estimator, SingleCnotDegenerateZones) {
    // Two qubits, one CNOT: M_i = 1 for both, so Eq. 15 gives zero expected
    // path and the CNOT routing latency vanishes; D = d_CNOT.
    lc::Circuit circ(2);
    circ.cnot(0, 1);
    const lcore::LeqaEstimator estimator(paper_params());
    const auto estimate = estimator.estimate(circ);
    EXPECT_DOUBLE_EQ(estimate.d_uncongest_us, 0.0);
    EXPECT_DOUBLE_EQ(estimate.l_cnot_avg_us, 0.0);
    EXPECT_NEAR(estimate.latency_us, 4930.0, 1e-9);
    EXPECT_EQ(estimate.critical_cnots, 1u);
}

TEST(Estimator, RicherInteractionsYieldPositiveRoutingLatency) {
    const auto circ = random_ft_circuit(12, 200, 11);
    const lcore::LeqaEstimator estimator(paper_params());
    const auto estimate = estimator.estimate(circ);
    EXPECT_GT(estimate.zone_area_b, 1.0);
    EXPECT_GT(estimate.d_uncongest_us, 0.0);
    EXPECT_GT(estimate.l_cnot_avg_us, 0.0);
    EXPECT_GT(estimate.latency_us, estimate.critical_gate_delay_us);
    EXPECT_EQ(estimate.num_qubits, 12u);
    EXPECT_EQ(estimate.num_ops, 200u);
    EXPECT_FALSE(estimate.e_sq.empty());
    EXPECT_EQ(estimate.e_sq.size(), estimate.d_q.size());
}

TEST(Estimator, EsqTermsCappedByQubitsAndOption) {
    const auto circ = random_ft_circuit(6, 60, 4);
    lcore::LeqaOptions options;
    options.sq_terms = 20;
    const lcore::LeqaEstimator estimator(paper_params(), options);
    const auto estimate = estimator.estimate(circ);
    EXPECT_LE(estimate.e_sq.size(), 6u); // min(Q, 20)

    lcore::LeqaOptions few;
    few.sq_terms = 3;
    const lcore::LeqaEstimator estimator_few(paper_params(), few);
    EXPECT_EQ(estimator_few.estimate(circ).e_sq.size(), 3u);
}

TEST(Estimator, ExactSqMatchesTruncationForSmallQ) {
    // With Q <= sq_terms the truncated and exact paths are identical.
    const auto circ = random_ft_circuit(8, 120, 9);
    lcore::LeqaOptions truncated;
    truncated.sq_terms = 20;
    lcore::LeqaOptions exact;
    exact.exact_sq = true;
    const auto e_trunc = lcore::LeqaEstimator(paper_params(), truncated).estimate(circ);
    const auto e_exact = lcore::LeqaEstimator(paper_params(), exact).estimate(circ);
    EXPECT_NEAR(e_trunc.latency_us, e_exact.latency_us, 1e-9);
}

TEST(Estimator, TwentyTermTruncationIsAccurateAtScale) {
    // The paper's claim (§3.1): the first 20 E[S_q] terms suffice.  With a
    // mid-size random circuit the truncated estimate must stay within a
    // fraction of a percent of the exact one.
    const auto circ = random_ft_circuit(64, 2000, 21);
    lcore::LeqaOptions exact;
    exact.exact_sq = true;
    const auto e_trunc = lcore::LeqaEstimator(paper_params()).estimate(circ);
    const auto e_exact = lcore::LeqaEstimator(paper_params(), exact).estimate(circ);
    EXPECT_NEAR(e_trunc.latency_us / e_exact.latency_us, 1.0, 5e-3);
}

TEST(Estimator, FasterQubitsLowerTheEstimate) {
    const auto circ = random_ft_circuit(16, 300, 13);
    auto slow = paper_params();
    slow.v = 0.0005;
    auto fast = paper_params();
    fast.v = 0.01;
    const auto d_slow = lcore::LeqaEstimator(slow).estimate(circ).latency_us;
    const auto d_fast = lcore::LeqaEstimator(fast).estimate(circ).latency_us;
    EXPECT_GT(d_slow, d_fast);
}

TEST(Estimator, LargerChannelCapacityNeverHurts) {
    const auto circ = random_ft_circuit(40, 800, 15);
    auto narrow = paper_params();
    narrow.nc = 1;
    auto wide = paper_params();
    wide.nc = 10;
    const auto d_narrow = lcore::LeqaEstimator(narrow).estimate(circ).latency_us;
    const auto d_wide = lcore::LeqaEstimator(wide).estimate(circ).latency_us;
    EXPECT_GE(d_narrow, d_wide);
}

TEST(Estimator, PrebuiltGraphOverloadMatches) {
    const auto circ = random_ft_circuit(10, 150, 19);
    const lcore::LeqaEstimator estimator(paper_params());
    const auto direct = estimator.estimate(circ);
    const leqa::qodg::Qodg graph(circ);
    const leqa::iig::Iig iig(circ);
    const auto prebuilt = estimator.estimate(graph, iig);
    EXPECT_DOUBLE_EQ(direct.latency_us, prebuilt.latency_us);
    EXPECT_DOUBLE_EQ(direct.l_cnot_avg_us, prebuilt.l_cnot_avg_us);
}

TEST(Estimator, DeterministicAcrossCalls) {
    const auto circ = random_ft_circuit(10, 150, 19);
    const lcore::LeqaEstimator estimator(paper_params());
    EXPECT_DOUBLE_EQ(estimator.estimate(circ).latency_us,
                     estimator.estimate(circ).latency_us);
}

TEST(Estimator, CriticalCensusConsistent) {
    const auto circ = random_ft_circuit(8, 100, 5);
    const auto estimate = lcore::LeqaEstimator(paper_params()).estimate(circ);
    EXPECT_EQ(estimate.critical_cnots + estimate.critical_one_qubit,
              estimate.critical_census.total_ops);
    // Hand-check Eq. 1: D = sum over path kinds of N_kind * (d_kind + L_kind).
    const auto params = paper_params();
    double reconstructed = 0.0;
    for (std::size_t k = 0; k < lc::kGateKindCount; ++k) {
        const auto kind = static_cast<lc::GateKind>(k);
        const auto count = estimate.critical_census.by_kind[k];
        if (count == 0) continue;
        const double routing = kind == lc::GateKind::Cnot ? estimate.l_cnot_avg_us
                                                          : estimate.l_one_qubit_avg_us;
        reconstructed += static_cast<double>(count) * (params.delay_us(kind) + routing);
    }
    EXPECT_NEAR(reconstructed, estimate.latency_us, 1e-6);
}

TEST(Estimator, LatencySecondsConversion) {
    lc::Circuit circ(1);
    circ.h(0);
    const auto estimate = lcore::LeqaEstimator(paper_params()).estimate(circ);
    EXPECT_NEAR(estimate.latency_seconds() * 1e6, estimate.latency_us, 1e-12);
}

TEST(Estimator, InvalidOptions) {
    lcore::LeqaOptions options;
    options.sq_terms = 0;
    EXPECT_THROW(lcore::LeqaEstimator(paper_params(), options), InputError);
}

// -------------------------------------------------------------- calibrate --

TEST(Calibrate, RecoversGeneratingV) {
    // Produce "actual" latencies from LEQA itself at a secret v; the
    // calibrator must recover it to within the grid/golden tolerance.
    const double secret_v = 0.0031;
    auto generator_params = paper_params();
    generator_params.v = secret_v;
    const lcore::LeqaEstimator generator(generator_params);

    std::vector<lc::Circuit> circuits;
    circuits.push_back(random_ft_circuit(16, 400, 100));
    circuits.push_back(random_ft_circuit(24, 600, 101));
    circuits.push_back(random_ft_circuit(12, 300, 102));

    std::vector<lcore::CalibrationSample> samples;
    for (const auto& circ : circuits) {
        samples.push_back({&circ, generator.estimate(circ).latency_us});
    }
    const auto result = lcore::calibrate_v(samples, paper_params());
    EXPECT_LT(result.mean_abs_rel_error, 1e-4);
    EXPECT_NEAR(std::log10(result.v), std::log10(secret_v), 0.02);
    EXPECT_GT(result.evaluations, 0u);
}

TEST(Calibrate, ErrorMetricMatchesDefinition) {
    const auto circ = random_ft_circuit(10, 200, 7);
    const lcore::LeqaEstimator estimator(paper_params());
    const double actual = estimator.estimate(circ).latency_us * 1.10; // 10% off
    const std::vector<lcore::CalibrationSample> samples{{&circ, actual}};
    const double error =
        lcore::mean_abs_relative_error(samples, paper_params(), lcore::LeqaOptions{});
    EXPECT_NEAR(error, 0.10 / 1.10, 1e-9);
}

TEST(Calibrate, RejectsBadInput) {
    EXPECT_THROW((void)lcore::calibrate_v(std::vector<lcore::CalibrationSample>{},
                                          paper_params()),
                 InputError);
    const auto circ = random_ft_circuit(4, 20, 3);
    std::vector<lcore::CalibrationSample> bad{{&circ, 0.0}};
    EXPECT_THROW((void)lcore::calibrate_v(bad, paper_params()), InputError);
}

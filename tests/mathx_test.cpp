// Unit + property tests for the mathx module: binomials (Eq. 4/18), M/M/1
// queue algebra (Eqs. 8-11), TSP bounds (Eqs. 13-15), stats and fits.
#include <gtest/gtest.h>

#include <cmath>

#include "mathx/binomial.h"
#include "mathx/queueing.h"
#include "mathx/stats.h"
#include "mathx/tsp.h"
#include "util/error.h"

namespace lm = leqa::mathx;

// --------------------------------------------------------------- binomial --

TEST(Binomial, SmallExactValues) {
    EXPECT_DOUBLE_EQ(lm::binomial(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(lm::binomial(5, 0), 1.0);
    EXPECT_DOUBLE_EQ(lm::binomial(5, 5), 1.0);
    EXPECT_NEAR(lm::binomial(5, 2), 10.0, 1e-9);
    EXPECT_NEAR(lm::binomial(10, 3), 120.0, 1e-6);
    EXPECT_NEAR(lm::binomial(52, 5), 2598960.0, 1e-3);
}

TEST(Binomial, RejectsBadArguments) {
    EXPECT_THROW((void)lm::log_binomial(-1, 0), leqa::util::InputError);
    EXPECT_THROW((void)lm::log_binomial(3, 4), leqa::util::InputError);
    EXPECT_THROW((void)lm::log_binomial(3, -1), leqa::util::InputError);
}

TEST(Binomial, RecursiveRowMatchesLogSpace) {
    // The paper's Eq. 18 recursion must agree with the lgamma-based form.
    for (const std::int64_t n : {1, 2, 5, 17, 40, 100}) {
        const auto row = lm::binomial_row_recursive(n, n);
        for (std::int64_t k = 0; k <= n; ++k) {
            const double expected = lm::binomial(n, k);
            const double got = row[static_cast<std::size_t>(k)];
            EXPECT_NEAR(got / expected, 1.0, 1e-9)
                << "n=" << n << " k=" << k;
        }
    }
}

TEST(BinomialPmf, SumsToOne) {
    for (const double p : {0.01, 0.3, 0.5, 0.97}) {
        const std::int64_t n = 60;
        double sum = 0.0;
        for (std::int64_t k = 0; k <= n; ++k) sum += lm::binomial_pmf(n, k, p);
        EXPECT_NEAR(sum, 1.0, 1e-9) << "p=" << p;
    }
}

TEST(BinomialPmf, Endpoints) {
    EXPECT_DOUBLE_EQ(lm::binomial_pmf(10, 0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(lm::binomial_pmf(10, 3, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(lm::binomial_pmf(10, 10, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(lm::binomial_pmf(10, 9, 1.0), 0.0);
}

TEST(BinomialPmf, LargeNNoUnderflowBlowup) {
    // Q ~ 3145 qubits (hwb200ps): direct C(n,k) overflows a double, the
    // log-space path must stay finite and normalized over a window.
    const std::int64_t n = 3145;
    const double p = 0.004;
    double sum = 0.0;
    for (std::int64_t k = 0; k <= 100; ++k) {
        const double value = lm::binomial_pmf(n, k, p);
        EXPECT_TRUE(std::isfinite(value));
        EXPECT_GE(value, 0.0);
        sum += value;
    }
    EXPECT_NEAR(sum, 1.0, 1e-6); // tail beyond k=100 is negligible
}

TEST(BinomialPmf, MatchesDirectComputationSmallN) {
    for (std::int64_t n : {1, 4, 12}) {
        for (std::int64_t k = 0; k <= n; ++k) {
            const double p = 0.37;
            const double direct =
                lm::binomial(n, k) * std::pow(p, double(k)) * std::pow(1 - p, double(n - k));
            EXPECT_NEAR(lm::binomial_pmf(n, k, p), direct, 1e-12);
        }
    }
}

// --------------------------------------------------------------- queueing --

TEST(Queueing, Mm1BasicAlgebra) {
    const lm::Mm1Queue queue{0.5, 2.0};
    EXPECT_DOUBLE_EQ(queue.utilization(), 0.25);
    EXPECT_DOUBLE_EQ(queue.average_queue_length(), 0.5 / 1.5);
    EXPECT_DOUBLE_EQ(queue.average_wait(), 1.0 / 1.5);
}

TEST(Queueing, UnstableQueueThrows) {
    const lm::Mm1Queue queue{2.0, 1.0};
    EXPECT_THROW((void)queue.average_queue_length(), leqa::util::Error);
}

TEST(Queueing, ServiceRateDefinition) {
    // mu = Nc / d_uncongest (paper Section 3.1).
    EXPECT_DOUBLE_EQ(lm::channel_service_rate(5.0, 1000.0), 0.005);
}

TEST(Queueing, Equation10RoundTrip) {
    // lambda derived from q must reproduce q through the M/M/1 length
    // formula: q = lambda / (mu - lambda).
    const double nc = 5.0;
    const double d = 800.0;
    const double mu = lm::channel_service_rate(nc, d);
    for (const double q : {0.5, 1.0, 7.0, 30.0}) {
        const double lambda = lm::arrival_rate_from_queue_length(q, nc, d);
        const lm::Mm1Queue queue{lambda, mu};
        EXPECT_NEAR(queue.average_queue_length(), q, 1e-9) << "q=" << q;
    }
}

TEST(Queueing, Equation11LittleLaw) {
    // W = L / lambda must equal the closed form (1+q) d / Nc (paper Eq. 11).
    const double nc = 5.0;
    const double d = 800.0;
    for (const double q : {0.25, 1.0, 6.0, 42.0}) {
        const double lambda = lm::arrival_rate_from_queue_length(q, nc, d);
        const double w_little = q / lambda;
        const double w_closed = lm::average_wait_from_queue_length(q, nc, d);
        EXPECT_NEAR(w_little, w_closed, 1e-9) << "q=" << q;
    }
}

TEST(Queueing, Equation8Piecewise) {
    const double nc = 5.0;
    const double d = 1000.0;
    // Uncongested branch: q <= Nc.
    EXPECT_DOUBLE_EQ(lm::congested_delay(0.0, nc, d), d);
    EXPECT_DOUBLE_EQ(lm::congested_delay(3.0, nc, d), d);
    EXPECT_DOUBLE_EQ(lm::congested_delay(5.0, nc, d), d);
    // Congested branch: (1+q) d / Nc.
    EXPECT_DOUBLE_EQ(lm::congested_delay(9.0, nc, d), 10.0 * d / 5.0);
    EXPECT_DOUBLE_EQ(lm::congested_delay(19.0, nc, d), 20.0 * d / 5.0);
}

TEST(Queueing, CongestedDelayMonotoneInQ) {
    const double nc = 5.0;
    const double d = 1000.0;
    double previous = 0.0;
    for (double q = 0.0; q < 40.0; q += 1.0) {
        const double now = lm::congested_delay(q, nc, d);
        EXPECT_GE(now, previous);
        previous = now;
    }
}

// -------------------------------------------------------------------- tsp --

TEST(Tsp, BoundsOrderAndMidpoint) {
    for (const double n : {2.0, 5.0, 17.0, 100.0, 1000.0}) {
        const double lower = lm::tsp_tour_lower_bound(n);
        const double upper = lm::tsp_tour_upper_bound(n);
        const double mid = lm::tsp_tour_estimate(n);
        EXPECT_LT(lower, upper);
        EXPECT_NEAR(mid, (lower + upper) / 2.0, 1e-12);
    }
}

TEST(Tsp, PaperConstants) {
    // Eq. 13: 0.708 sqrt(n) + 0.551 ; Eq. 14: 0.718 sqrt(n) + 0.731.
    EXPECT_NEAR(lm::tsp_tour_lower_bound(4.0), 0.708 * 2 + 0.551, 1e-12);
    EXPECT_NEAR(lm::tsp_tour_upper_bound(4.0), 0.718 * 2 + 0.731, 1e-12);
    EXPECT_NEAR(lm::tsp_tour_estimate(4.0), 0.713 * 2 + 0.641, 1e-12);
}

TEST(Tsp, HamiltonianPathEquation15) {
    // E[l] = sqrt(B) * (0.713 sqrt(M+1) + 0.641) * (M-1)/M.
    const double b = 9.0;
    const double m = 8.0;
    const double expected = 3.0 * (0.713 * 3.0 + 0.641) * (7.0 / 8.0);
    EXPECT_NEAR(lm::expected_hamiltonian_path(b, m), expected, 1e-12);
}

TEST(Tsp, HamiltonianPathDegenerateCases) {
    // M = 1 vanishes exactly (documented artifact of the tour->path factor).
    EXPECT_DOUBLE_EQ(lm::expected_hamiltonian_path(4.0, 1.0), 0.0);
    EXPECT_THROW((void)lm::expected_hamiltonian_path(4.0, 0.0), leqa::util::InputError);
    EXPECT_THROW((void)lm::expected_hamiltonian_path(-1.0, 2.0), leqa::util::InputError);
}

TEST(Tsp, HamiltonianPathMonotoneInAreaAndDegree) {
    double previous = 0.0;
    for (double m = 2.0; m < 50.0; m += 1.0) {
        const double value = lm::expected_hamiltonian_path(16.0, m);
        EXPECT_GT(value, previous);
        previous = value;
    }
    EXPECT_LT(lm::expected_hamiltonian_path(4.0, 10.0),
              lm::expected_hamiltonian_path(25.0, 10.0));
}

// ------------------------------------------------------------------ stats --

TEST(Stats, Descriptives) {
    const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(lm::mean(values), 2.5);
    EXPECT_DOUBLE_EQ(lm::variance(values), 1.25);
    EXPECT_DOUBLE_EQ(lm::stddev(values), std::sqrt(1.25));
    EXPECT_DOUBLE_EQ(lm::min_value(values), 1.0);
    EXPECT_DOUBLE_EQ(lm::max_value(values), 4.0);
    EXPECT_THROW((void)lm::mean(std::vector<double>{}), leqa::util::InputError);
}

TEST(Stats, Percentile) {
    std::vector<double> values{4.0, 1.0, 3.0, 2.0};
    EXPECT_DOUBLE_EQ(lm::percentile(values, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(lm::percentile(values, 100.0), 4.0);
    EXPECT_DOUBLE_EQ(lm::percentile(values, 50.0), 2.5);
}

TEST(Stats, NearestRankPercentileBoundaries) {
    // The pinned formula: rank = ceil(fraction * N) clamped to [1, N], the
    // result is the rank-th smallest sample (1-based).
    // Empty window: no samples, 0.0 by definition (the service's idle stats).
    EXPECT_EQ(lm::nearest_rank_percentile({}, 0.0), 0.0);
    EXPECT_EQ(lm::nearest_rank_percentile({}, 0.5), 0.0);
    EXPECT_EQ(lm::nearest_rank_percentile({}, 0.99), 0.0);

    // A single sample answers every fraction.
    for (const double fraction : {0.0, 0.5, 0.9, 0.99, 1.0}) {
        EXPECT_EQ(lm::nearest_rank_percentile({7.5}, fraction), 7.5) << fraction;
    }

    // Small rings saturate high fractions: ceil(0.99 N) == N for N < 100,
    // so p99 is the maximum until the window holds 100 samples.
    EXPECT_EQ(lm::nearest_rank_percentile({2.0, 1.0}, 0.99), 2.0);
    EXPECT_EQ(lm::nearest_rank_percentile({3.0, 1.0, 2.0}, 0.99), 3.0);
    std::vector<double> ninety_nine;
    for (int i = 1; i <= 99; ++i) ninety_nine.push_back(i);
    EXPECT_EQ(lm::nearest_rank_percentile(ninety_nine, 0.99), 99.0);
    std::vector<double> one_hundred = ninety_nine;
    one_hundred.push_back(100.0);
    // N = 100 is the first window where p99 drops off the maximum.
    EXPECT_EQ(lm::nearest_rank_percentile(one_hundred, 0.99), 99.0);

    // Exact ranks, both parities: N=4 p50 -> rank ceil(2) = 2; N=5 p50 ->
    // rank ceil(2.5) = 3 (the true median).
    EXPECT_EQ(lm::nearest_rank_percentile({4.0, 1.0, 3.0, 2.0}, 0.5), 2.0);
    EXPECT_EQ(lm::nearest_rank_percentile({5.0, 4.0, 1.0, 3.0, 2.0}, 0.5), 3.0);

    // Fraction 0 clamps the rank up to 1 (minimum); fraction 1 is rank N.
    EXPECT_EQ(lm::nearest_rank_percentile({4.0, 1.0, 3.0}, 0.0), 1.0);
    EXPECT_EQ(lm::nearest_rank_percentile({4.0, 1.0, 3.0}, 1.0), 4.0);

    EXPECT_THROW((void)lm::nearest_rank_percentile({1.0}, -0.1),
                 leqa::util::InputError);
    EXPECT_THROW((void)lm::nearest_rank_percentile({1.0}, 1.5),
                 leqa::util::InputError);
}

TEST(Stats, LinearFitRecoversLine) {
    std::vector<double> x, y;
    for (int i = 0; i < 20; ++i) {
        x.push_back(i);
        y.push_back(3.0 * i - 2.0);
    }
    const auto fit = lm::linear_fit(x, y);
    EXPECT_NEAR(fit.slope, 3.0, 1e-9);
    EXPECT_NEAR(fit.intercept, -2.0, 1e-9);
    EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, PowerLawFitRecoversExponent) {
    // y = 2 x^1.5 -- the shape of the paper's QSPR runtime claim.
    std::vector<double> x, y;
    for (const double v : {10.0, 50.0, 200.0, 1000.0, 5000.0}) {
        x.push_back(v);
        y.push_back(2.0 * std::pow(v, 1.5));
    }
    const auto fit = lm::power_law_fit(x, y);
    EXPECT_NEAR(fit.exponent, 1.5, 1e-9);
    EXPECT_NEAR(fit.coefficient, 2.0, 1e-9);
    EXPECT_NEAR(lm::power_law_eval(fit, 100.0), 2.0 * std::pow(100.0, 1.5), 1e-6);
}

TEST(Stats, PowerLawFitRejectsNonPositive) {
    const std::vector<double> x{1.0, -2.0};
    const std::vector<double> y{1.0, 2.0};
    EXPECT_THROW((void)lm::power_law_fit(x, y), leqa::util::InputError);
}

// Tests for the Monte Carlo validation module: the empirical estimators
// must converge to the analytic forms they are designed to check.
#include <gtest/gtest.h>

#include <cmath>

#include "core/leqa.h"
#include "mathx/queueing.h"
#include "mathx/tsp.h"
#include "mc/path_model.h"
#include "mc/queue_sim.h"
#include "mc/zone_coverage.h"
#include "util/error.h"
#include "util/rng.h"

namespace lmc = leqa::mc;
namespace lm = leqa::mathx;
using leqa::util::InputError;
using leqa::util::Rng;

// ---------------------------------------------------------- zone coverage --

TEST(ZoneCoverageMc, MatchesAnalyticCenterAndCorner) {
    Rng rng(11);
    lmc::ZoneCoverageConfig config;
    config.width = 12;
    config.height = 12;
    config.zone_side = 4;
    config.trials = 40000;
    for (const auto& [x, y] : {std::pair{1, 1}, {6, 6}, {12, 12}, {4, 9}}) {
        const double analytic = leqa::core::LeqaEstimator::coverage_probability(
            x, y, config.width, config.height, config.zone_side);
        const double empirical = lmc::empirical_coverage_probability(config, x, y, rng);
        EXPECT_NEAR(empirical, analytic, 0.01) << "(" << x << "," << y << ")";
    }
}

TEST(ZoneCoverageMc, SurfacesSumToFabricArea) {
    Rng rng(13);
    lmc::ZoneCoverageConfig config;
    config.width = 10;
    config.height = 8;
    config.zone_side = 3;
    config.num_zones = 6;
    config.trials = 200;
    const auto surfaces = lmc::empirical_expected_surfaces(config, config.num_zones, rng);
    double sum = 0.0;
    for (const double s : surfaces) sum += s;
    // Counting every cell exactly once per trial: the sum is exact.
    EXPECT_NEAR(sum, 80.0, 1e-9);
}

TEST(ZoneCoverageMc, SurfacesTrackAnalyticForm) {
    Rng rng(17);
    lmc::ZoneCoverageConfig config;
    config.width = 16;
    config.height = 16;
    config.zone_side = 4;
    config.num_zones = 10;
    config.trials = 3000;
    std::vector<double> coverage;
    for (int x = 1; x <= config.width; ++x) {
        for (int y = 1; y <= config.height; ++y) {
            coverage.push_back(leqa::core::LeqaEstimator::coverage_probability(
                x, y, config.width, config.height, config.zone_side));
        }
    }
    const auto empirical = lmc::empirical_expected_surfaces(config, 4, rng);
    for (long long q = 0; q <= 4; ++q) {
        const double analytic = leqa::core::LeqaEstimator::expected_surface(
            coverage, config.num_zones, q);
        // Within a few percent for the bulk of the distribution.
        EXPECT_NEAR(empirical[static_cast<std::size_t>(q)], analytic,
                    std::max(0.6, analytic * 0.06))
            << "q=" << q;
    }
}

TEST(ZoneCoverageMc, ValidatesConfig) {
    Rng rng(1);
    lmc::ZoneCoverageConfig config;
    config.zone_side = 99; // larger than fabric
    EXPECT_THROW((void)lmc::empirical_coverage_probability(config, 1, 1, rng),
                 InputError);
    config = {};
    EXPECT_THROW((void)lmc::empirical_coverage_probability(config, 0, 1, rng),
                 InputError);
    config = {};
    EXPECT_THROW((void)lmc::empirical_expected_surfaces(config, config.num_zones + 1, rng),
                 InputError);
}

// ------------------------------------------------------------- path model --

TEST(PathModelMc, ExactSolverBelowThreshold) {
    Rng rng(19);
    lmc::PathModelConfig config;
    config.num_points = 8;
    config.trials = 50;
    const auto result = lmc::empirical_path_model(config, rng);
    EXPECT_TRUE(result.exact);
    EXPECT_GT(result.mean_path, 0.0);
    EXPECT_GE(result.mean_tour, result.mean_path);
}

TEST(PathModelMc, HeuristicAboveThreshold) {
    Rng rng(23);
    lmc::PathModelConfig config;
    config.num_points = 20;
    config.trials = 30;
    const auto result = lmc::empirical_path_model(config, rng);
    EXPECT_FALSE(result.exact);
    EXPECT_GT(result.mean_path, 0.0);
}

TEST(PathModelMc, ScalesWithZoneArea) {
    Rng rng(29);
    lmc::PathModelConfig small;
    small.zone_area = 4.0;
    small.num_points = 6;
    small.trials = 80;
    lmc::PathModelConfig large = small;
    large.zone_area = 36.0;
    const double small_mean = lmc::empirical_path_model(small, rng).mean_path;
    const double large_mean = lmc::empirical_path_model(large, rng).mean_path;
    // Lengths scale with the zone side (factor 3 here).
    EXPECT_NEAR(large_mean / small_mean, 3.0, 0.5);
}

TEST(PathModelMc, Eq15TracksEmpiricalAtLargeM) {
    // At M >> 1 the BHH asymptotic should be close (the model_validation
    // bench plots the small-M bias; here we lock in the large-M agreement).
    Rng rng(31);
    lmc::PathModelConfig config;
    config.num_points = 40;              // M = 39
    config.zone_area = 40.0;             // B = M + 1
    config.trials = 120;
    const auto result = lmc::empirical_path_model(config, rng);
    const double analytic = lm::expected_hamiltonian_path(40.0, 39.0);
    EXPECT_NEAR(analytic / result.mean_path, 1.0, 0.12);
}

// -------------------------------------------------------------- queue sim --

TEST(QueueSimMc, MatchesMm1ClosedForms) {
    Rng rng(37);
    lmc::QueueSimConfig config;
    config.arrival_rate = 0.003;
    config.service_rate = 0.005;
    config.num_customers = 120000;
    const auto result = lmc::simulate_mm1(config, rng);
    const lm::Mm1Queue analytic{config.arrival_rate, config.service_rate};
    EXPECT_NEAR(result.mean_system_time, analytic.average_wait(),
                analytic.average_wait() * 0.05);
    EXPECT_NEAR(result.mean_queue_length, analytic.average_queue_length(),
                analytic.average_queue_length() * 0.08);
    EXPECT_NEAR(result.utilization, analytic.utilization(), 0.03);
}

TEST(QueueSimMc, LittleLawClosesEmpirically) {
    Rng rng(41);
    lmc::QueueSimConfig config;
    config.arrival_rate = 0.004;
    config.service_rate = 0.005;
    config.num_customers = 150000;
    const auto result = lmc::simulate_mm1(config, rng);
    // L = lambda W within simulation noise.
    EXPECT_NEAR(result.mean_queue_length,
                config.arrival_rate * result.mean_system_time,
                result.mean_queue_length * 0.05);
}

TEST(QueueSimMc, Equation11RoundTrip) {
    // Derive lambda from a target queue length q (Eq. 10), simulate, and
    // check the simulated wait against Eq. 11 -- the full loop the paper's
    // congestion model takes.
    Rng rng(43);
    const double nc = 5.0;
    const double d_uncongest = 1000.0;
    const double q = 3.0;
    lmc::QueueSimConfig config;
    config.arrival_rate = lm::arrival_rate_from_queue_length(q, nc, d_uncongest);
    config.service_rate = lm::channel_service_rate(nc, d_uncongest);
    config.num_customers = 150000;
    const auto result = lmc::simulate_mm1(config, rng);
    const double w_analytic = lm::average_wait_from_queue_length(q, nc, d_uncongest);
    EXPECT_NEAR(result.mean_system_time, w_analytic, w_analytic * 0.06);
}

TEST(QueueSimMc, RejectsUnstableQueue) {
    Rng rng(47);
    lmc::QueueSimConfig config;
    config.arrival_rate = 0.01;
    config.service_rate = 0.005;
    EXPECT_THROW((void)lmc::simulate_mm1(config, rng), InputError);
}

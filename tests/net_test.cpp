// Tests for the TCP network layer: line framing under the length cap, the
// poll reactor multiplexing many connections onto one service, connection-
// local id spaces, nowait backpressure (Unavailable rejections while the
// queue is full), overlong-line resynchronization, mid-request disconnects
// (no leaked jobs, no crash), and graceful stop-with-drain.
#include <gtest/gtest.h>

#include <future>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "net/framing.h"
#include "net/server.h"
#include "net/socket.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/status.h"

namespace ln = leqa::net;
namespace ls = leqa::service;
namespace lp = leqa::pipeline;
namespace lu = leqa::util;
namespace wire = ls::wire;

namespace {

/// A job body that parks its worker until release(); pins a single-threaded
/// service so TCP submissions pile into the bounded queue.
class Blocker {
public:
    [[nodiscard]] ls::JobFn job() {
        return [this](lp::Pipeline&, const lp::RunControl&) -> ls::JobResult {
            started_.set_value();
            release_future_.wait();
            return lu::Status(lu::StatusCode::Internal, "blocker never succeeds");
        };
    }
    void wait_until_running() { started_.get_future().wait(); }
    void release() { release_.set_value(); }

private:
    std::promise<void> started_;
    std::promise<void> release_;
    std::shared_future<void> release_future_{release_.get_future().share()};
};

/// Server + reactor thread with teardown that always joins.
class Reactor {
public:
    Reactor(ls::Service& service, ln::ServerOptions options = {})
        : server_(service, options), thread_([this] { server_.run(); }) {}
    ~Reactor() { stop(); }

    void stop() {
        server_.stop();
        if (thread_.joinable()) thread_.join();
    }

    ln::Server& server() { return server_; }
    [[nodiscard]] std::uint16_t port() const { return server_.port(); }

private:
    ln::Server server_;
    std::thread thread_;
};

ls::ServiceOptions one_worker(std::size_t max_queue = 1024) {
    ls::ServiceOptions options;
    options.threads = 1;
    options.max_queue = max_queue;
    return options;
}

std::string estimate_line(std::uint64_t id) {
    wire::WireRequest request;
    request.id = id;
    request.op = wire::WireRequest::Op::Estimate;
    request.source = "bench:ham3";
    return wire::serialize_request(request);
}

wire::WireResponse read_response(ln::Client& client) {
    const std::optional<std::string> line = client.read_line();
    EXPECT_TRUE(line.has_value()) << "connection closed before a response";
    if (!line) return {};
    const lu::Result<wire::WireResponse> parsed = wire::parse_response(*line);
    EXPECT_TRUE(parsed.ok()) << *line;
    return parsed.ok() ? parsed.value() : wire::WireResponse{};
}

} // namespace

// ---------------------------------------------------------------- framing --

TEST(NetFraming, SplitsLinesAcrossFeedsAndStripsCr) {
    ln::LineReader reader(64);
    reader.feed("{\"a\":1}\r\n{\"b\"");
    auto first = reader.next();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->text, "{\"a\":1}"); // CR stripped
    EXPECT_FALSE(first->overlong);
    EXPECT_FALSE(reader.next().has_value()); // second line incomplete
    reader.feed(":2}\n");
    auto second = reader.next();
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->text, "{\"b\":2}");
}

TEST(NetFraming, OverlongLineReportsOnceAndResyncs) {
    ln::LineReader reader(8);
    reader.feed(std::string(100, 'x')); // way past the cap, no newline yet
    auto overlong = reader.next();
    ASSERT_TRUE(overlong.has_value());
    EXPECT_TRUE(overlong->overlong);
    reader.feed(std::string(50, 'y')); // still the same junk line
    EXPECT_FALSE(reader.next().has_value()); // reported once, now discarding
    reader.feed("\nok\n"); // newline ends the junk; next line is clean
    auto clean = reader.next();
    ASSERT_TRUE(clean.has_value());
    EXPECT_FALSE(clean->overlong);
    EXPECT_EQ(clean->text, "ok");
}

TEST(NetFraming, FinishEmitsUnterminatedTail) {
    ln::LineReader reader(64);
    reader.feed("tail-no-newline");
    EXPECT_FALSE(reader.next().has_value());
    reader.finish();
    auto tail = reader.next();
    ASSERT_TRUE(tail.has_value());
    EXPECT_EQ(tail->text, "tail-no-newline");
}

// Regressions (found by fuzz_framing; inputs checked in under
// fuzz/regressions/fuzz_framing/): with a cap below the 256-byte
// diagnostic-prefix bound, the overlong resize used to *grow* a short line,
// padding the kept prefix with NULs past the bytes the client ever sent.
// The kept prefix is now deterministic — the first min(256, cap + 1) bytes
// of the logical line, however the stream is segmented.
TEST(NetFraming, OverlongPrefixNeverOutgrowsTheLine) {
    for (const bool terminated : {true, false}) {
        ln::LineReader reader(2); // the minimum cap, far below the 256 prefix
        reader.feed(terminated ? "abcdef\n" : "abcdef");
        reader.finish();
        auto overlong = reader.next();
        ASSERT_TRUE(overlong.has_value());
        EXPECT_TRUE(overlong->overlong);
        EXPECT_EQ(overlong->text, "abc"); // first cap+1 bytes, no NUL padding
        EXPECT_FALSE(reader.next().has_value());
    }
}

// A "...\r\n" line whose CR lands on a segment boundary must frame exactly
// like the whole-feed case: the CR pending a possible strip does not count
// against the cap.
TEST(NetFraming, TrailingCrOnSegmentBoundaryDoesNotFlipOverlong) {
    ln::LineReader whole(2);
    whole.feed("xy\r\n");
    ln::LineReader chunked(2);
    for (const char byte : {'x', 'y', '\r', '\n'}) {
        chunked.feed(std::string_view(&byte, 1));
    }
    for (ln::LineReader* reader : {&whole, &chunked}) {
        auto line = reader->next();
        ASSERT_TRUE(line.has_value());
        EXPECT_FALSE(line->overlong);
        EXPECT_EQ(line->text, "xy");
        EXPECT_FALSE(reader->next().has_value());
    }
}

// ---------------------------------------------------------------- reactor --

TEST(NetServer, ManyConnectionsWithOverlappingIdSpaces) {
    ls::Service service(lp::PipelineConfig{}, one_worker());
    Reactor reactor(service);

    // Every connection uses the SAME wire ids 1..3; the per-connection
    // sessions must keep them isolated.
    constexpr int kConnections = 8;
    std::vector<std::unique_ptr<ln::Client>> clients;
    for (int c = 0; c < kConnections; ++c) {
        clients.push_back(
            std::make_unique<ln::Client>("127.0.0.1", reactor.port()));
        for (std::uint64_t id = 1; id <= 3; ++id) {
            clients.back()->send_line(estimate_line(id));
        }
    }
    for (auto& client : clients) {
        std::vector<bool> seen(4, false);
        for (int i = 0; i < 3; ++i) {
            const wire::WireResponse response = read_response(*client);
            ASSERT_GE(response.id, 1u);
            ASSERT_LE(response.id, 3u);
            EXPECT_FALSE(seen[response.id]) << "duplicate id " << response.id;
            seen[response.id] = true;
            EXPECT_TRUE(response.status.ok()) << response.status.to_string();
        }
        client->finish_writes();
        EXPECT_FALSE(client->read_line().has_value()); // clean close, no extras
    }
    EXPECT_EQ(reactor.server().connections_accepted(), kConnections);
}

TEST(NetServer, BackpressureRejectsWithUnavailableAndDrainsAccepted) {
    ls::Service service(lp::PipelineConfig{}, one_worker(/*max_queue=*/2));
    Blocker blocker;
    const ls::JobHandle gate = service.submit_fn(blocker.job());
    blocker.wait_until_running(); // the lone worker is now pinned

    Reactor reactor(service);
    ln::Client client("127.0.0.1", reactor.port());
    for (std::uint64_t id = 1; id <= 5; ++id) {
        client.send_line(estimate_line(id));
    }

    // With the worker pinned, ids 1-2 fill the queue and 3-5 must reject
    // immediately with the retryable code -- their responses arrive while
    // the blocker still holds the worker, proving the reactor never blocked.
    std::vector<std::uint64_t> rejected;
    for (int i = 0; i < 3; ++i) {
        const wire::WireResponse response = read_response(client);
        EXPECT_EQ(response.status.code(), lu::StatusCode::Unavailable);
        EXPECT_TRUE(lu::status_code_retryable(response.status.code()));
        rejected.push_back(response.id);
    }
    std::sort(rejected.begin(), rejected.end());
    EXPECT_EQ(rejected, (std::vector<std::uint64_t>{3, 4, 5}));

    blocker.release();
    // The two accepted jobs drain and answer exactly once each.
    std::vector<std::uint64_t> accepted;
    for (int i = 0; i < 2; ++i) {
        const wire::WireResponse response = read_response(client);
        EXPECT_TRUE(response.status.ok()) << response.status.to_string();
        accepted.push_back(response.id);
    }
    std::sort(accepted.begin(), accepted.end());
    EXPECT_EQ(accepted, (std::vector<std::uint64_t>{1, 2}));
    client.finish_writes();
    EXPECT_FALSE(client.read_line().has_value());
    EXPECT_EQ(service.stats().rejected, 3u);
}

TEST(NetServer, OverlongLineAnswersParseErrorAndResynchronizes) {
    ls::Service service(lp::PipelineConfig{}, one_worker());
    ln::ServerOptions options;
    options.max_line_bytes = 128;
    Reactor reactor(service, options);

    ln::Client client("127.0.0.1", reactor.port());
    client.send_raw(std::string(1000, 'x')); // one giant junk line...
    client.send_raw("\n");                   // ...terminated,
    client.send_line(estimate_line(7));      // then a well-formed request

    const wire::WireResponse error = read_response(client);
    EXPECT_EQ(error.id, 0u); // the junk never parsed; its id is unknowable
    EXPECT_EQ(error.status.code(), lu::StatusCode::ParseError);

    const wire::WireResponse good = read_response(client);
    EXPECT_EQ(good.id, 7u);
    EXPECT_TRUE(good.status.ok()) << good.status.to_string();
    client.finish_writes();
    EXPECT_FALSE(client.read_line().has_value());
}

TEST(NetServer, MidRequestDisconnectCancelsJobsWithoutLeakOrCrash) {
    ls::Service service(lp::PipelineConfig{}, one_worker());
    Blocker blocker;
    const ls::JobHandle gate = service.submit_fn(blocker.job());
    blocker.wait_until_running();

    Reactor reactor(service);
    {
        ln::Client doomed("127.0.0.1", reactor.port());
        doomed.send_line(estimate_line(1)); // queued behind the blocker
        // Wait until the reactor has actually submitted it.
        while (service.stats().queue_depth < 1) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        // Abort the connection (RST, not FIN): SO_LINGER zero + close.
        struct linger hard = {1, 0};
        ::setsockopt(doomed.fd(), SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
        doomed.close();
    }
    // The dead connection's queued job must be cancelled, not leaked: the
    // queue empties without the blocker ever releasing.
    for (int i = 0; i < 2000 && service.stats().queue_depth > 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(service.stats().queue_depth, 0u);
    EXPECT_GE(service.stats().cancelled, 1u);

    // And the reactor is still fully alive for the next client.
    blocker.release();
    ln::Client healthy("127.0.0.1", reactor.port());
    healthy.send_line(estimate_line(2));
    const wire::WireResponse response = read_response(healthy);
    EXPECT_EQ(response.id, 2u);
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
    healthy.finish_writes();
    EXPECT_FALSE(healthy.read_line().has_value());
}

TEST(NetServer, GracefulStopDrainsInFlightBeforeReturning) {
    ls::Service service(lp::PipelineConfig{}, one_worker());
    Blocker blocker;
    const ls::JobHandle gate = service.submit_fn(blocker.job());
    blocker.wait_until_running();

    Reactor reactor(service);
    ln::Client client("127.0.0.1", reactor.port());
    client.send_line(estimate_line(9)); // queued behind the blocker
    while (service.stats().queue_depth < 1) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    // Stop while the request is in flight: the reactor must keep the
    // connection until the job answers, flush, then return.
    std::thread releaser([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        blocker.release();
    });
    reactor.stop(); // joins run(): only returns once drained
    releaser.join();

    const wire::WireResponse response = read_response(client);
    EXPECT_EQ(response.id, 9u);
    EXPECT_TRUE(response.status.ok()) << response.status.to_string();
    EXPECT_FALSE(client.read_line().has_value()); // then EOF
}

TEST(NetServer, SettledNotifyWakeHandshakeUnderStress) {
    // Stress regression for the Session::set_on_settled -> Server::wake()
    // handshake (the historical lost-wakeup hang): with a multi-worker
    // service, jobs settle on worker threads while the reactor is still
    // dispatching later lines from the same feed, hitting the
    // "settled before the reactor returned to poll" window over and over.
    // Deterministic by construction -- fixed request counts, every id must
    // answer exactly once, no sleeps or timing assumptions; a lost wakeup
    // shows up as a hung read_line().  Under TSan (the CI tsan job runs
    // this suite) it doubles as a data-race check on the session in-flight
    // table and the completions queue.
    ls::ServiceOptions options;
    options.threads = 4;
    options.max_queue = 1024;
    ls::Service service(lp::PipelineConfig{}, options);
    Reactor reactor(service);

    constexpr int kConnections = 6;
    constexpr std::uint64_t kRequests = 40;
    std::vector<std::thread> drivers;
    std::vector<int> duplicate_or_bad(kConnections, 0);
    drivers.reserve(kConnections);
    for (int c = 0; c < kConnections; ++c) {
        drivers.emplace_back([&, c] {
            ln::Client client("127.0.0.1", reactor.port());
            for (std::uint64_t id = 1; id <= kRequests; ++id) {
                client.send_line(estimate_line(id));
            }
            std::vector<bool> seen(kRequests + 1, false);
            for (std::uint64_t i = 0; i < kRequests; ++i) {
                const wire::WireResponse response = read_response(client);
                if (response.id < 1 || response.id > kRequests ||
                    seen[response.id] || !response.status.ok()) {
                    ++duplicate_or_bad[c];
                    continue;
                }
                seen[response.id] = true;
            }
            client.finish_writes();
            if (client.read_line().has_value()) ++duplicate_or_bad[c];
        });
    }
    for (std::thread& driver : drivers) driver.join();
    for (int c = 0; c < kConnections; ++c) {
        EXPECT_EQ(duplicate_or_bad[c], 0) << "connection " << c;
    }
    EXPECT_EQ(reactor.server().connections_accepted(), kConnections);
    EXPECT_EQ(service.stats().succeeded,
              static_cast<std::size_t>(kConnections) * kRequests);
}

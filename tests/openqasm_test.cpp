// Tests for the OpenQASM 2.0 subset parser/writer, format auto-detection,
// and deterministic fuzzing of all three parsers (malformed input must
// raise ParseError, never crash or accept).
#include <gtest/gtest.h>

#include "parser/diagnostics.h"
#include "parser/io.h"
#include "parser/openqasm.h"
#include "parser/qasm.h"
#include "parser/real.h"
#include "util/rng.h"

namespace lc = leqa::circuit;
namespace lp = leqa::parser;

// --------------------------------------------------------------- openqasm --

TEST(OpenQasm, ParsesCanonicalProgram) {
    const std::string text = R"(// a Toffoli test
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[2];
ccx q[0], q[1], q[2];
cx q[0],q[1];
t q[0];
tdg q[1];
swap q[1], q[2];
barrier q[0], q[1];
id q[0];
)";
    const auto circ = lp::parse_openqasm(text);
    EXPECT_EQ(circ.num_qubits(), 3u);
    ASSERT_EQ(circ.size(), 6u); // barrier/id ignored
    EXPECT_EQ(circ.gate(0).kind, lc::GateKind::H);
    EXPECT_EQ(circ.gate(1).kind, lc::GateKind::Toffoli);
    EXPECT_EQ(circ.gate(2).kind, lc::GateKind::Cnot);
    EXPECT_EQ(circ.gate(5).kind, lc::GateKind::Swap);
    EXPECT_EQ(circ.qubit_name(0), "q[0]");
}

TEST(OpenQasm, MultipleRegisters) {
    const std::string text =
        "OPENQASM 2.0;\nqreg a[2];\nqreg b[2];\ncx a[1], b[0];\n";
    const auto circ = lp::parse_openqasm(text);
    EXPECT_EQ(circ.num_qubits(), 4u);
    EXPECT_EQ(circ.gate(0).controls[0], 1u);
    EXPECT_EQ(circ.gate(0).targets[0], 2u);
}

TEST(OpenQasm, StatementsSpanLines) {
    const std::string text = "OPENQASM 2.0;\nqreg q[2];\ncx\n  q[0],\n  q[1];\n";
    const auto circ = lp::parse_openqasm(text);
    ASSERT_EQ(circ.size(), 1u);
    EXPECT_EQ(circ.gate(0).kind, lc::GateKind::Cnot);
}

TEST(OpenQasm, Diagnostics) {
    EXPECT_THROW((void)lp::parse_openqasm("qreg q[2];\n"), lp::ParseError); // no header
    EXPECT_THROW((void)lp::parse_openqasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[5];\n"),
                 lp::ParseError); // out of range
    EXPECT_THROW((void)lp::parse_openqasm("OPENQASM 2.0;\ncx q[0], q[1];\n"),
                 lp::ParseError); // unknown register
    EXPECT_THROW((void)lp::parse_openqasm("OPENQASM 2.0;\nqreg q[2];\nqreg q[2];\n"),
                 lp::ParseError); // duplicate register
    EXPECT_THROW((void)lp::parse_openqasm("OPENQASM 2.0;\nqreg q[0];\n"),
                 lp::ParseError); // empty register
    EXPECT_THROW((void)lp::parse_openqasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0]"),
                 lp::ParseError); // missing ';'
    EXPECT_THROW((void)lp::parse_openqasm("OPENQASM 2.0;\nqreg q[1];\nmeasure q[0];\n"),
                 lp::ParseError); // unsupported construct
    EXPECT_THROW((void)lp::parse_openqasm("OPENQASM 2.0;\nqreg q[1];\nrx(0.5) q[0];\n"),
                 lp::ParseError); // parameterized gate
    EXPECT_THROW((void)lp::parse_openqasm("OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[0];\n"),
                 lp::ParseError); // duplicate operand
    EXPECT_THROW((void)lp::parse_openqasm("OPENQASM 2.0;\nqreg q[2];\nccx q[0], q[1];\n"),
                 lp::ParseError); // arity
}

TEST(OpenQasm, ErrorsCarryLineNumbers) {
    try {
        (void)lp::parse_openqasm("OPENQASM 2.0;\nqreg q[2];\n\nbogus q[0];\n", "f.qasm");
        FAIL() << "expected ParseError";
    } catch (const lp::ParseError& e) {
        EXPECT_EQ(e.location().line, 4u);
    }
}

TEST(OpenQasm, WriterRoundTrip) {
    lc::Circuit circ(4, "rt");
    circ.h(0).cnot(0, 1).toffoli(1, 2, 3).tdg(3).fredkin(0, 2, 3).swap(1, 2).sdg(0);
    const std::string text = lp::write_openqasm(circ);
    EXPECT_TRUE(lp::looks_like_openqasm(text));
    const auto parsed = lp::parse_openqasm(text);
    EXPECT_TRUE(circ.same_structure(parsed));
}

TEST(OpenQasm, WriterRejectsWideGates) {
    lc::Circuit circ(5);
    circ.add_gate(lc::make_mcx({0, 1, 2, 3}, 4));
    EXPECT_THROW((void)lp::write_openqasm(circ), leqa::util::InputError);
}

TEST(OpenQasm, Detection) {
    EXPECT_TRUE(lp::looks_like_openqasm("// hi\nOPENQASM 2.0;\n"));
    EXPECT_TRUE(lp::looks_like_openqasm("  openqasm 2.0;\n"));
    EXPECT_FALSE(lp::looks_like_openqasm(".qubits 3\nh q0\n"));
    EXPECT_FALSE(lp::looks_like_openqasm(""));
}

TEST(OpenQasm, LoadNetlistAutoDetects) {
    lc::Circuit circ(2, "auto");
    circ.h(0).cnot(0, 1);
    const std::string path = ::testing::TempDir() + "/leqa_openqasm_auto.qasm";
    lp::write_file(path, lp::write_openqasm(circ));
    const auto loaded = lp::load_netlist(path);
    EXPECT_TRUE(circ.same_structure(loaded));
    std::remove(path.c_str());
}

// ------------------------------------------------------------------- fuzz --

namespace {

/// Deterministic garbage generator biased toward parser-relevant tokens.
std::string random_text(leqa::util::Rng& rng) {
    static const char* kTokens[] = {
        "OPENQASM 2.0", "qreg", "creg", "q[0]", "q[1]", "q[-1]", "q[",   "]",
        ";",            ",",    "cx",   "ccx",  "t3",   "t1",    "f3",   ".qubits",
        ".numvars",     ".begin", ".end", "qubit", "cnot", "toffoli", "h", "t",
        "\n",           " ",    "#",    "//",   "{",    "1e99",  "-3",   "xyz",
        "\t",           "q0",   "q1",   "a b c", "18446744073709551616",
    };
    std::string out;
    const std::size_t pieces = 1 + rng.index(40);
    for (std::size_t i = 0; i < pieces; ++i) {
        out += kTokens[rng.index(std::size(kTokens))];
        if (rng.chance(0.3)) out += ' ';
    }
    return out;
}

} // namespace

TEST(ParserFuzz, NoCrashOnGarbage) {
    // Every parser must either parse or raise ParseError/InputError --
    // never crash, hang, or throw anything else.
    leqa::util::Rng rng(0xFADED);
    for (int trial = 0; trial < 400; ++trial) {
        const std::string text = random_text(rng);
        for (const int which : {0, 1, 2}) {
            try {
                switch (which) {
                    case 0: (void)lp::parse_qasm(text); break;
                    case 1: (void)lp::parse_real(text); break;
                    default: (void)lp::parse_openqasm(text); break;
                }
            } catch (const leqa::util::Error&) {
                // expected for malformed input
            }
        }
    }
}

TEST(ParserFuzz, MutatedValidNetlistsNeverCrash) {
    // Take a valid netlist and apply random single-character mutations.
    lc::Circuit circ(4, "fuzzbase");
    circ.h(0).cnot(0, 1).toffoli(0, 1, 2).swap(2, 3).tdg(3);
    const std::string base = lp::write_qasm(circ);
    leqa::util::Rng rng(0xBEEF);
    for (int trial = 0; trial < 300; ++trial) {
        std::string mutated = base;
        const std::size_t edits = 1 + rng.index(4);
        for (std::size_t e = 0; e < edits; ++e) {
            const std::size_t pos = rng.index(mutated.size());
            mutated[pos] = static_cast<char>(32 + rng.index(95));
        }
        try {
            (void)lp::parse_qasm(mutated);
        } catch (const leqa::util::Error&) {
        }
    }
}

// Tests for the latency-driven placement optimizer (core/optimize.h), its
// pipeline/service/wire plumbing, the QSPR initial_homes handoff, and the
// surface-cache statistics passthrough that rode along in the same change.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "core/optimize.h"
#include "core/placed.h"
#include "pipeline/pipeline.h"
#include "qspr/qspr.h"
#include "report/report.h"
#include "service/service.h"
#include "service/wire.h"
#include "synth/ft_synth.h"
#include "util/error.h"
#include "util/json_value.h"

namespace lc = leqa::core;
namespace lf = leqa::fabric;
namespace lp = leqa::pipeline;
namespace ls = leqa::service;
namespace wire = leqa::service::wire;

namespace {

struct TestCircuit {
    leqa::circuit::Circuit ft;
    std::unique_ptr<leqa::qodg::Qodg> graph;
};

TestCircuit ft_bench(const std::string& bench) {
    TestCircuit out{
        leqa::synth::ft_synthesize(lp::parse_source("bench:" + bench).load())
            .circuit,
        nullptr};
    out.graph = std::make_unique<leqa::qodg::Qodg>(out.ft);
    return out;
}

std::vector<lf::UlbId> centered_homes(const lf::PhysicalParams& params,
                                      std::size_t num_qubits) {
    return leqa::qspr::initial_placement(
        lf::FabricGeometry(lf::make_topology(params)), num_qubits,
        leqa::qspr::PlacementStrategy::CenteredBlock, 1);
}

} // namespace

// --------------------------------------------------------------- options --

TEST(OptimizeOptions, ModeNamesRoundTrip) {
    EXPECT_EQ(lc::parse_optimize_mode("anneal"), lc::OptimizeMode::Anneal);
    EXPECT_EQ(lc::parse_optimize_mode("greedy"), lc::OptimizeMode::Greedy);
    EXPECT_EQ(lc::optimize_mode_name(lc::OptimizeMode::Anneal), "anneal");
    EXPECT_EQ(lc::optimize_mode_name(lc::OptimizeMode::Greedy), "greedy");
    EXPECT_THROW((void)lc::parse_optimize_mode("tabu"), leqa::util::InputError);
}

TEST(Optimize, RejectsBadOptions) {
    const TestCircuit tc = ft_bench("ham3");
    lf::PhysicalParams params;
    params.width = params.height = 6;
    const std::vector<lf::UlbId> homes = centered_homes(params, tc.ft.num_qubits());

    lc::OptimizeOptions options;
    options.max_moves = 0;
    EXPECT_THROW(
        (void)lc::optimize_placement(*tc.graph, tc.ft, params, homes, options),
        leqa::util::InputError);

    options = {};
    options.relocate_fraction = 1.5;
    EXPECT_THROW(
        (void)lc::optimize_placement(*tc.graph, tc.ft, params, homes, options),
        leqa::util::InputError);

    options = {};
    options.max_seconds = -1.0;
    EXPECT_THROW(
        (void)lc::optimize_placement(*tc.graph, tc.ft, params, homes, options),
        leqa::util::InputError);
}

// ----------------------------------------------------------- determinism --

TEST(Optimize, SameSeedSameResult) {
    const TestCircuit tc = ft_bench("8bitadder");
    lf::PhysicalParams params;
    params.width = params.height = 7;
    const std::vector<lf::UlbId> homes = centered_homes(params, tc.ft.num_qubits());

    lc::OptimizeOptions options;
    options.max_moves = 1500;
    options.seed = 77;

    const lc::OptimizeResult a =
        lc::optimize_placement(*tc.graph, tc.ft, params, homes, options);
    const lc::OptimizeResult b =
        lc::optimize_placement(*tc.graph, tc.ft, params, homes, options);
    EXPECT_EQ(a.homes, b.homes);
    EXPECT_EQ(a.final_latency_us, b.final_latency_us);
    EXPECT_EQ(a.moves_accepted, b.moves_accepted);
    EXPECT_EQ(a.moves_fast_rejected, b.moves_fast_rejected);
    EXPECT_EQ(a.nodes_retimed, b.nodes_retimed);

    // A different seed explores a different move stream (the usual case;
    // the counters are the sensitive witness).
    options.seed = 78;
    const lc::OptimizeResult c =
        lc::optimize_placement(*tc.graph, tc.ft, params, homes, options);
    EXPECT_NE(a.moves_accepted, c.moves_accepted);
}

// ----------------------------------------------------------- improvement --

TEST(Optimize, ImprovesCenteredBlockOnSuiteCircuits) {
    // The acceptance bar: strictly better placed latency than the
    // CenteredBlock start on at least two suite circuits, within a bounded
    // budget.  Greedy is the reliable witness (no uphill wandering).
    int improved = 0;
    for (const char* bench : {"8bitadder", "hwb15ps"}) {
        const TestCircuit tc = ft_bench(bench);
        lf::PhysicalParams params; // the paper's 60x60 default fabric
        const std::vector<lf::UlbId> homes =
            centered_homes(params, tc.ft.num_qubits());

        lc::OptimizeOptions options;
        options.mode = lc::OptimizeMode::Greedy;
        options.max_moves = 2000;
        const lc::OptimizeResult result =
            lc::optimize_placement(*tc.graph, tc.ft, params, homes, options);

        EXPECT_LE(result.final_latency_us, result.initial_latency_us);
        EXPECT_EQ(result.initial_homes, homes);
        // The reported final latency must be the true placed latency of the
        // reported homes.
        const lc::PlacedTimer check(*tc.graph, tc.ft, params, result.homes);
        EXPECT_EQ(check.latency_us(), result.final_latency_us);
        if (result.improved) ++improved;
    }
    EXPECT_GE(improved, 2);
}

TEST(Optimize, FinalLatencyNeverWorseThanInitial) {
    const TestCircuit tc = ft_bench("ham3");
    lf::PhysicalParams params;
    params.width = params.height = 5;
    const std::vector<lf::UlbId> homes = centered_homes(params, tc.ft.num_qubits());

    for (const auto mode : {lc::OptimizeMode::Anneal, lc::OptimizeMode::Greedy}) {
        lc::OptimizeOptions options;
        options.mode = mode;
        options.max_moves = 800;
        const lc::OptimizeResult result =
            lc::optimize_placement(*tc.graph, tc.ft, params, homes, options);
        EXPECT_LE(result.final_latency_us, result.initial_latency_us);
        EXPECT_EQ(result.improved,
                  result.final_latency_us < result.initial_latency_us);
        EXPECT_EQ(result.moves_attempted, options.max_moves);
    }
}

// --------------------------------------------------- qspr initial_homes --

TEST(Qspr, HonorsExplicitInitialHomes) {
    const TestCircuit tc = ft_bench("ham3");
    lf::PhysicalParams params;
    params.width = params.height = 8;

    leqa::qspr::QsprOptions options;
    options.collect_schedule = true;
    options.initial_homes = {9, 10, 17}; // a hand-picked cluster
    const leqa::qspr::QsprMapper mapper(params, options);
    const leqa::qspr::QsprResult result = mapper.map(tc.ft);
    EXPECT_GT(result.latency_us, 0.0);

    // A different explicit placement changes the mapped outcome in general;
    // at minimum both must run and produce positive latency.
    options.initial_homes = {0, 7, 56}; // fabric corners
    const leqa::qspr::QsprResult spread =
        leqa::qspr::QsprMapper(params, options).map(tc.ft);
    EXPECT_GT(spread.latency_us, 0.0);
    EXPECT_GE(spread.stats.total_hops, result.stats.total_hops);
}

TEST(Qspr, RejectsBadInitialHomes) {
    const TestCircuit tc = ft_bench("ham3");
    lf::PhysicalParams params;
    params.width = params.height = 8;

    leqa::qspr::QsprOptions options;
    options.initial_homes = {0, 1}; // wrong cardinality
    EXPECT_THROW((void)leqa::qspr::QsprMapper(params, options).map(tc.ft),
                 leqa::util::InputError);

    options.initial_homes = {0, 1, 64}; // out of range
    EXPECT_THROW((void)leqa::qspr::QsprMapper(params, options).map(tc.ft),
                 leqa::util::InputError);

    options.initial_homes = {0, 1, 1}; // duplicate
    EXPECT_THROW((void)leqa::qspr::QsprMapper(params, options).map(tc.ft),
                 leqa::util::InputError);
}

// ------------------------------------------------------ pipeline/service --

TEST(PipelineOptimize, RunsAndRespectsCancellation) {
    lp::Pipeline pipe;
    lc::OptimizeOptions options;
    options.max_moves = 500;
    const lc::OptimizeResult result =
        pipe.optimize(lp::parse_source("bench:ham3"), options);
    EXPECT_GT(result.initial_latency_us, 0.0);
    EXPECT_LE(result.final_latency_us, result.initial_latency_us);

    // A pre-cancelled control aborts at the first checkpoint.
    lp::RunControl control;
    control.cancel.store(true);
    EXPECT_THROW(
        (void)pipe.optimize(lp::parse_source("bench:ham3"), options, {}, &control),
        leqa::util::CancelledError);
}

TEST(ServiceOptimize, SubmitCompletesWithOptimizeResult) {
    ls::Service service;
    ls::OptimizeRequest request;
    request.source = "bench:ham3";
    request.options.max_moves = 300;
    const ls::JobResult result = service.submit_optimize(request).wait();
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    const auto* optimized = std::get_if<lc::OptimizeResult>(&result.value());
    ASSERT_NE(optimized, nullptr);
    EXPECT_LE(optimized->final_latency_us, optimized->initial_latency_us);

    // Unknown bench surfaces as a status, not a throw.
    request.source = "bench:no-such-circuit";
    const ls::JobResult failure = service.submit_optimize(request).wait();
    EXPECT_FALSE(failure.ok());
}

// ------------------------------------------------------------------ wire --

TEST(WireOptimize, RequestRoundTrip) {
    wire::WireRequest request;
    request.id = 9;
    request.op = wire::WireRequest::Op::Optimize;
    request.source = "bench:ham3";
    request.optimize.max_moves = 5000;
    request.optimize.seed = 7;
    request.optimize.mode = lc::OptimizeMode::Greedy;
    request.optimize.max_seconds = 1.5;
    request.params.topology = lf::TopologyKind::Torus;

    const std::string line = wire::serialize_request(request);
    const leqa::util::Result<wire::WireRequest> parsed = wire::parse_request(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
    EXPECT_EQ(parsed.value(), request);
}

TEST(WireOptimize, ParseValidation) {
    EXPECT_FALSE(wire::parse_request(R"({"id":1,"op":"optimize"})").ok());
    EXPECT_FALSE(
        wire::parse_request(
            R"({"id":1,"op":"optimize","source":"bench:ham3","moves":0})")
            .ok());
    EXPECT_FALSE(
        wire::parse_request(
            R"({"id":1,"op":"optimize","source":"bench:ham3","mode":"tabu"})")
            .ok());
    EXPECT_FALSE(
        wire::parse_request(
            R"({"id":1,"op":"optimize","source":"bench:ham3","max_seconds":-1})")
            .ok());

    const auto parsed = wire::parse_request(
        R"({"id":1,"op":"optimize","source":"bench:ham3","moves":123,"seed":9})");
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().optimize.max_moves, 123u);
    EXPECT_EQ(parsed.value().optimize.seed, 9u);
    EXPECT_EQ(parsed.value().optimize.mode, lc::OptimizeMode::Anneal);
}

TEST(WireOptimize, ResultSerializesUnderOptimizeKey) {
    lc::OptimizeResult optimized;
    optimized.homes = {3, 1};
    optimized.initial_homes = {1, 3};
    optimized.initial_latency_us = 100.0;
    optimized.final_latency_us = 90.0;
    optimized.improved = true;
    optimized.moves_attempted = 10;

    const std::string line =
        wire::serialize_result(4, ls::JobResult(ls::JobOutput(optimized)));
    const leqa::util::JsonValue root = leqa::util::json_parse(line);
    EXPECT_EQ(root.at("id").as_int(), 4);
    const leqa::util::JsonValue& body = root.at("result").at("optimize");
    EXPECT_EQ(body.at("initial_latency_us").as_number(), 100.0);
    EXPECT_EQ(body.at("final_latency_us").as_number(), 90.0);
    EXPECT_TRUE(body.at("improved").as_bool());
    EXPECT_EQ(body.at("moves").at("attempted").as_int(), 10);
    EXPECT_EQ(body.at("homes").items().size(), 2u);
}

// -------------------------------------------------- surface cache stats --

TEST(SurfaceCacheStats, FlowThroughPipelineAndWire) {
    lp::Pipeline pipe;
    (void)pipe.run(lp::EstimationRequest(lp::parse_source("bench:ham3")));
    const lp::CacheStats cache = pipe.cache_stats();
    // One estimate prices at least one (q, params) surface from scratch.
    EXPECT_GT(cache.surface_recomputes, 0u);
    const std::string text = cache.to_string();
    EXPECT_NE(text.find("surfaces"), std::string::npos);

    ls::ServiceStats stats;
    stats.cache = cache;
    const leqa::util::JsonValue root =
        leqa::util::json_parse(wire::serialize_stats(2, stats));
    const leqa::util::JsonValue& cache_json =
        root.at("result").at("stats").at("cache");
    EXPECT_EQ(cache_json.at("surface_recomputes").as_int(),
              static_cast<long long>(cache.surface_recomputes));
    EXPECT_EQ(cache_json.at("surface_hits").as_int(),
              static_cast<long long>(cache.surface_hits));
    EXPECT_EQ(cache_json.at("surface_evictions").as_int(),
              static_cast<long long>(cache.surface_evictions));
}

TEST(SurfaceCacheStats, ExploreAggregatesAcrossWorkers) {
    lp::Pipeline pipe;
    lc::ExplorationSpec spec;
    spec.sides = {40, 50};
    spec.capacities = {3, 5};
    spec.threads = 2;
    const lc::ExplorationResult result =
        pipe.explore(lp::parse_source("bench:ham3"), spec);
    EXPECT_EQ(result.points.size(), 4u);
    // Every worker prices surfaces; the merged counters must see them.
    EXPECT_GT(result.surface_cache.recomputes, 0u);
    EXPECT_GE(pipe.cache_stats().surface_recomputes,
              result.surface_cache.recomputes);
}

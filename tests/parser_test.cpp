// Unit tests for the parser module: QASM subset, RevLib .real, round-trips,
// diagnostics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "parser/diagnostics.h"
#include "parser/io.h"
#include "parser/qasm.h"
#include "parser/real.h"
#include "util/rng.h"

namespace lp = leqa::parser;
namespace lc = leqa::circuit;

// ------------------------------------------------------------------- qasm --

TEST(QasmParser, ParsesDirectivesAndGates) {
    const std::string text = R"(# a comment
.name ham3
.qubits 3
h q0
t q1            // trailing comment
tdg q2
cnot q0, q1
toffoli q0 q1 q2
)";
    const auto circ = lp::parse_qasm(text);
    EXPECT_EQ(circ.name(), "ham3");
    EXPECT_EQ(circ.num_qubits(), 3u);
    ASSERT_EQ(circ.size(), 5u);
    EXPECT_EQ(circ.gate(0).kind, lc::GateKind::H);
    EXPECT_EQ(circ.gate(3).kind, lc::GateKind::Cnot);
    EXPECT_EQ(circ.gate(4).kind, lc::GateKind::Toffoli);
    EXPECT_EQ(circ.gate(4).controls, (std::vector<lc::Qubit>{0, 1}));
    EXPECT_EQ(circ.gate(4).targets, (std::vector<lc::Qubit>{2}));
}

TEST(QasmParser, NamedQubitDeclarations) {
    const std::string text = R"(qubit alpha
qubit beta
cnot alpha, beta
)";
    const auto circ = lp::parse_qasm(text);
    EXPECT_EQ(circ.num_qubits(), 2u);
    EXPECT_EQ(circ.qubit_name(0), "alpha");
    EXPECT_EQ(circ.gate(0).controls[0], 0u);
    EXPECT_EQ(circ.gate(0).targets[0], 1u);
}

TEST(QasmParser, MultiControlledGates) {
    const std::string text = ".qubits 5\ntoffoli q0 q1 q2 q3 q4\nfredkin q0, q1, q2\n";
    const auto circ = lp::parse_qasm(text);
    ASSERT_EQ(circ.size(), 2u);
    EXPECT_EQ(circ.gate(0).controls.size(), 4u);
    EXPECT_EQ(circ.gate(1).kind, lc::GateKind::Fredkin);
    EXPECT_EQ(circ.gate(1).controls.size(), 1u);
    EXPECT_EQ(circ.gate(1).targets.size(), 2u);
}

TEST(QasmParser, ErrorsCarryLineNumbers) {
    const std::string text = ".qubits 2\ncnot q0, q9\n";
    try {
        (void)lp::parse_qasm(text, "bad.qasm");
        FAIL() << "expected ParseError";
    } catch (const lp::ParseError& e) {
        EXPECT_EQ(e.location().line, 2u);
        EXPECT_EQ(e.location().file, "bad.qasm");
        EXPECT_NE(std::string(e.what()).find("bad.qasm:2"), std::string::npos);
    }
}

TEST(QasmParser, RejectsMalformedInput) {
    EXPECT_THROW((void)lp::parse_qasm(".qubits two\n"), lp::ParseError);
    EXPECT_THROW((void)lp::parse_qasm(".qubits 2\n.qubits 2\n"), lp::ParseError);
    EXPECT_THROW((void)lp::parse_qasm(".bogus 1\n"), lp::ParseError);
    EXPECT_THROW((void)lp::parse_qasm(".qubits 2\nfrobnicate q0\n"), lp::ParseError);
    EXPECT_THROW((void)lp::parse_qasm(".qubits 2\ncnot q0\n"), lp::ParseError);
    EXPECT_THROW((void)lp::parse_qasm(".qubits 2\ncnot q0, q0\n"), lp::ParseError);
    EXPECT_THROW((void)lp::parse_qasm("qubit 0bad\n"), lp::ParseError);
    EXPECT_THROW((void)lp::parse_qasm("qubit a\nqubit a\n"), lp::ParseError);
}

TEST(QasmParser, EmptyCircuitParses) {
    const auto circ = lp::parse_qasm("# nothing here\n");
    EXPECT_EQ(circ.num_qubits(), 0u);
    EXPECT_TRUE(circ.empty());
}

TEST(QasmWriter, RoundTripsDefaultNames) {
    lc::Circuit circ(4, "rt");
    circ.h(0).cnot(0, 1).toffoli(1, 2, 3).tdg(3).fredkin(0, 1, 2).swap(2, 3);
    const std::string text = lp::write_qasm(circ);
    const auto parsed = lp::parse_qasm(text);
    EXPECT_TRUE(circ.same_structure(parsed));
    EXPECT_EQ(parsed.name(), "rt");
}

TEST(QasmWriter, RoundTripsNamedQubitsAndComments) {
    lc::Circuit circ;
    circ.add_qubit("a");
    circ.add_qubit("b");
    circ.add_comment("generator: unit-test");
    circ.cnot(0, 1);
    const std::string text = lp::write_qasm(circ);
    EXPECT_NE(text.find("# generator: unit-test"), std::string::npos);
    const auto parsed = lp::parse_qasm(text);
    EXPECT_TRUE(circ.same_structure(parsed));
    EXPECT_EQ(parsed.qubit_name(0), "a");
}

TEST(QasmRoundTrip, RandomCircuitsProperty) {
    // Property: write(parse(write(c))) is stable and structure-preserving
    // for arbitrary gate mixes.
    leqa::util::Rng rng(20260610);
    for (int trial = 0; trial < 25; ++trial) {
        const std::size_t n = 3 + rng.index(6);
        lc::Circuit circ(n, "prop" + std::to_string(trial));
        const std::size_t gates = 1 + rng.index(40);
        for (std::size_t g = 0; g < gates; ++g) {
            const auto picks = rng.sample_without_replacement(n, 3);
            switch (rng.index(6)) {
                case 0: circ.h(static_cast<lc::Qubit>(picks[0])); break;
                case 1: circ.t(static_cast<lc::Qubit>(picks[0])); break;
                case 2: circ.x(static_cast<lc::Qubit>(picks[0])); break;
                case 3:
                    circ.cnot(static_cast<lc::Qubit>(picks[0]),
                              static_cast<lc::Qubit>(picks[1]));
                    break;
                case 4:
                    circ.toffoli(static_cast<lc::Qubit>(picks[0]),
                                 static_cast<lc::Qubit>(picks[1]),
                                 static_cast<lc::Qubit>(picks[2]));
                    break;
                default:
                    circ.fredkin(static_cast<lc::Qubit>(picks[0]),
                                 static_cast<lc::Qubit>(picks[1]),
                                 static_cast<lc::Qubit>(picks[2]));
                    break;
            }
        }
        const auto parsed = lp::parse_qasm(lp::write_qasm(circ));
        EXPECT_TRUE(circ.same_structure(parsed)) << "trial " << trial;
    }
}

// ------------------------------------------------------------------- real --

TEST(RealParser, ParsesCanonicalFile) {
    const std::string text = R"(# ham3 style file
.version 1.0
.numvars 3
.variables a b c
.inputs a b c
.outputs a b c
.begin
t1 a
t2 a b
t3 a b c
f3 a b c
f2 b c
.end
)";
    const auto circ = lp::parse_real(text);
    EXPECT_EQ(circ.num_qubits(), 3u);
    ASSERT_EQ(circ.size(), 5u);
    EXPECT_EQ(circ.gate(0).kind, lc::GateKind::X);
    EXPECT_EQ(circ.gate(1).kind, lc::GateKind::Cnot);
    EXPECT_EQ(circ.gate(2).kind, lc::GateKind::Toffoli);
    EXPECT_EQ(circ.gate(3).kind, lc::GateKind::Fredkin);
    EXPECT_EQ(circ.gate(4).kind, lc::GateKind::Swap);
}

TEST(RealParser, NumvarsWithoutVariablesGetsDefaults) {
    const std::string text = ".numvars 2\n.begin\nt2 x0 x1\n.end\n";
    const auto circ = lp::parse_real(text);
    EXPECT_EQ(circ.num_qubits(), 2u);
    EXPECT_EQ(circ.qubit_name(0), "x0");
}

TEST(RealParser, LargeToffoli) {
    const std::string text =
        ".numvars 5\n.variables a b c d e\n.begin\nt5 a b c d e\n.end\n";
    const auto circ = lp::parse_real(text);
    ASSERT_EQ(circ.size(), 1u);
    EXPECT_EQ(circ.gate(0).kind, lc::GateKind::Toffoli);
    EXPECT_EQ(circ.gate(0).controls.size(), 4u);
}

TEST(RealParser, Diagnostics) {
    EXPECT_THROW((void)lp::parse_real(".numvars x\n"), lp::ParseError);
    EXPECT_THROW((void)lp::parse_real(".numvars 1\n.variables a b\n"), lp::ParseError);
    EXPECT_THROW((void)lp::parse_real("t1 a\n"), lp::ParseError);            // before .begin
    EXPECT_THROW((void)lp::parse_real(".numvars 1\n.begin\nt1 x0\n"), lp::ParseError); // no .end
    EXPECT_THROW((void)lp::parse_real(".numvars 2\n.begin\nt3 x0 x1\n.end\n"),
                 lp::ParseError); // arity mismatch
    EXPECT_THROW((void)lp::parse_real(".numvars 2\n.begin\ng2 x0 x1\n.end\n"),
                 lp::ParseError); // unknown family
    EXPECT_THROW((void)lp::parse_real(".numvars 2\n.begin\nt2 x0 zz\n.end\n"),
                 lp::ParseError); // unknown variable
}

TEST(RealWriter, RoundTripsClassicalCircuit) {
    lc::Circuit circ(4, "rev");
    circ.x(0).cnot(0, 1).toffoli(0, 1, 2).fredkin(0, 2, 3).swap(1, 3);
    circ.add_gate(lc::make_mcx({0, 1, 2}, 3));
    const std::string text = lp::write_real(circ);
    const auto parsed = lp::parse_real(text);
    EXPECT_TRUE(circ.same_structure(parsed));
}

TEST(RealWriter, RejectsNonClassical) {
    lc::Circuit circ(1);
    circ.h(0);
    EXPECT_THROW((void)lp::write_real(circ), leqa::util::InputError);
}

// --------------------------------------------------------------------- io --

TEST(Io, SaveAndLoadByExtension) {
    lc::Circuit circ(3, "diskrt");
    circ.x(0).cnot(0, 1).toffoli(0, 1, 2);

    const std::string qasm_path = ::testing::TempDir() + "/leqa_io_test.qasm";
    lp::save_netlist(circ, qasm_path);
    const auto from_qasm = lp::load_netlist(qasm_path);
    EXPECT_TRUE(circ.same_structure(from_qasm));

    const std::string real_path = ::testing::TempDir() + "/leqa_io_test.real";
    lp::save_netlist(circ, real_path);
    const auto from_real = lp::load_netlist(real_path);
    EXPECT_TRUE(circ.same_structure(from_real));

    std::remove(qasm_path.c_str());
    std::remove(real_path.c_str());
}

TEST(Io, MissingFileThrows) {
    EXPECT_THROW((void)lp::load_netlist("/nonexistent/path/foo.qasm"),
                 leqa::util::InputError);
}

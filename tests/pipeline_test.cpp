// Tests for the pipeline facade: source resolution semantics, intermediate
// caching across sweeps and batches, batch determinism vs sequential runs,
// and error propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "benchgen/suite.h"
#include "parser/qasm.h"
#include "pipeline/pipeline.h"
#include "report/report.h"
#include "util/error.h"

namespace lp = leqa::pipeline;
namespace lf = leqa::fabric;
using leqa::util::InputError;

namespace {

/// RAII temp directory for path-resolution tests.
class TempDir {
public:
    TempDir() {
        path_ = std::filesystem::temp_directory_path() /
                ("leqa_pipeline_test_" + std::to_string(::getpid()));
        std::filesystem::create_directories(path_);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    [[nodiscard]] std::string file(const std::string& name) const {
        return (path_ / name).string();
    }

private:
    std::filesystem::path path_;
};

void write_text(const std::string& path, const std::string& text) {
    std::ofstream out(path);
    out << text;
}

} // namespace

// ---------------------------------------------------------------- sources --

TEST(CircuitSource, BenchNamespaceResolvesSuite) {
    const lp::CircuitSource source = lp::parse_source("bench:ham3");
    EXPECT_EQ(source.kind(), lp::CircuitSource::Kind::Bench);
    const auto circ = source.load();
    EXPECT_EQ(circ.num_qubits(), 3u);
}

TEST(CircuitSource, ExistingFileBeatsBenchmarkName) {
    // A local file named like a suite benchmark must resolve to the file,
    // not be shadowed by the generated suite (the historical ambiguity).
    TempDir dir;
    const std::string path = dir.file("ham3");
    write_text(path, leqa::parser::write_qasm(leqa::benchgen::make_benchmark("ham15")));

    const lp::CircuitSource source = lp::parse_source(path);
    EXPECT_EQ(source.kind(), lp::CircuitSource::Kind::Path);
    // ham15 has 15 qubits; the suite's ham3 has 3.  The file wins.
    EXPECT_EQ(source.load().num_qubits(), 15u);
}

TEST(CircuitSource, BareSuiteNameIsAnErrorWithHint) {
    try {
        (void)lp::parse_source("gf2^16mult");
        FAIL() << "expected InputError";
    } catch (const InputError& e) {
        EXPECT_NE(std::string(e.what()).find("bench:gf2^16mult"), std::string::npos);
    }
}

TEST(CircuitSource, UnknownBenchNameThrows) {
    EXPECT_THROW((void)lp::parse_source("bench:nosuchbench"), InputError);
    EXPECT_THROW((void)lp::CircuitSource::from_bench("nosuchbench"), InputError);
}

TEST(CircuitSource, InlineFingerprintDistinguishesCircuits) {
    const auto a = lp::CircuitSource::from_circuit(leqa::benchgen::ham3());
    const auto b = lp::CircuitSource::from_circuit(leqa::benchgen::ham3());
    leqa::circuit::Circuit other = leqa::benchgen::ham3();
    other.x(0);
    const auto c = lp::CircuitSource::from_circuit(std::move(other));
    EXPECT_EQ(a.identity(), b.identity());   // same structure, same identity
    EXPECT_NE(a.identity(), c.identity());   // one extra gate changes it
}

// ----------------------------------------------------------------- caching --

TEST(PipelineCache, FabricSweepBuildsGraphsOnce) {
    lp::Pipeline pipe;
    const auto source = lp::CircuitSource::from_bench("ham3");

    const auto sweep = pipe.sweep_fabric_sides(source, {20, 30, 40, 60, 80});
    EXPECT_EQ(sweep.points.size(), 5u);

    // The whole sweep: one parse+synth, one QODG/IIG build, zero rebuilds.
    const lp::CacheStats stats = pipe.cache_stats();
    EXPECT_EQ(stats.circuit_misses, 1u);
    EXPECT_EQ(stats.graph_misses, 1u);
    EXPECT_EQ(stats.evictions, 0u);

    // A second sweep over the same circuit is pure cache hits.
    (void)pipe.sweep_channel_capacity(source, {1, 2, 5});
    const lp::CacheStats after = pipe.cache_stats();
    EXPECT_EQ(after.circuit_misses, 1u);
    EXPECT_EQ(after.graph_misses, 1u);
    EXPECT_EQ(after.circuit_hits, stats.circuit_hits + 1);
    EXPECT_EQ(after.graph_hits, stats.graph_hits + 1);
}

TEST(PipelineCache, ParamOverridesShareOneEntry) {
    lp::Pipeline pipe;
    const auto source = lp::CircuitSource::from_bench("ham3");
    for (const int side : {30, 40, 60}) {
        lp::EstimationRequest request(source);
        lf::PhysicalParams params;
        params.width = side;
        params.height = side;
        request.params = params;
        const auto result = pipe.run(request);
        EXPECT_TRUE(result.estimate.has_value());
        EXPECT_EQ(result.params.width, side);
    }
    const lp::CacheStats stats = pipe.cache_stats();
    EXPECT_EQ(stats.circuit_misses, 1u);
    EXPECT_EQ(stats.graph_misses, 1u);
    EXPECT_EQ(stats.circuit_hits, 2u);
    EXPECT_EQ(stats.graph_hits, 2u);
}

TEST(PipelineCache, SweepMatchesDirectEstimates) {
    // Cached-graph sweeps must agree exactly with independent sessions.
    lp::Pipeline pipe;
    const auto source = lp::CircuitSource::from_bench("ham3");
    const auto sweep = pipe.sweep_fabric_sides(source, {30, 60});
    for (const auto& point : sweep.points) {
        lp::Pipeline fresh;
        lp::EstimationRequest request(source);
        request.params = point.params;
        const auto result = fresh.run(request);
        EXPECT_DOUBLE_EQ(result.estimate->latency_us, point.estimate.latency_us);
    }
}

TEST(PipelineCache, LruEvictionIsBounded) {
    lp::PipelineConfig config;
    config.max_cached_circuits = 2;
    lp::Pipeline pipe(config);
    (void)pipe.resolve(lp::CircuitSource::from_bench("ham3"));
    (void)pipe.resolve(lp::CircuitSource::from_bench("8bitadder"));
    (void)pipe.resolve(lp::CircuitSource::from_bench("hwb15ps"));
    EXPECT_EQ(pipe.cached_circuits(), 2u);
    EXPECT_EQ(pipe.cache_stats().evictions, 1u);

    // The evicted (least recent) entry re-resolves as a miss.
    (void)pipe.resolve(lp::CircuitSource::from_bench("ham3"));
    EXPECT_EQ(pipe.cache_stats().circuit_misses, 4u);
}

TEST(PipelineCache, SessionFabricIsPartOfIdentity) {
    // The cache key folds the session's full fabric description in: moving
    // the session geometry or topology can never serve an entry cached
    // under a different fabric.
    lp::Pipeline pipe;
    const auto source = lp::CircuitSource::from_bench("ham3");
    const auto on_grid = pipe.resolve(source);
    EXPECT_NE(on_grid->info().cache_key.find("fabric:grid:60x60"), std::string::npos);

    lf::PhysicalParams torus;
    torus.topology = lf::TopologyKind::Torus;
    pipe.set_params(torus);
    const auto on_torus = pipe.resolve(source);
    EXPECT_NE(on_grid->info().cache_key, on_torus->info().cache_key);

    lf::PhysicalParams moved;
    moved.width = 50;
    moved.height = 50;
    pipe.set_params(moved);
    const auto on_moved = pipe.resolve(source);
    EXPECT_NE(on_moved->info().cache_key, on_grid->info().cache_key);
    EXPECT_EQ(pipe.cache_stats().circuit_misses, 3u);

    // Returning to the original fabric is a pure hit again.
    pipe.set_params(lf::PhysicalParams{});
    (void)pipe.resolve(source);
    EXPECT_EQ(pipe.cache_stats().circuit_misses, 3u);
    EXPECT_EQ(pipe.cache_stats().circuit_hits, 1u);
}

TEST(PipelineSweeps, TopologySweepSharesOneEntry) {
    lp::Pipeline pipe;
    const auto source = lp::CircuitSource::from_bench("ham3");
    const auto sweep = pipe.sweep_topology(
        source, {lf::TopologyKind::Grid, lf::TopologyKind::Torus,
                 lf::TopologyKind::Line});
    ASSERT_EQ(sweep.points.size(), 3u);
    for (const auto& point : sweep.points) {
        EXPECT_GT(point.estimate.latency_us, 0.0);
    }
    EXPECT_EQ(sweep.points[2].params.height, 1); // line flattened
    const lp::CacheStats stats = pipe.cache_stats();
    EXPECT_EQ(stats.circuit_misses, 1u);
    EXPECT_EQ(stats.graph_misses, 1u);
}

TEST(PipelineCache, SynthOptionsChangeIdentity) {
    lp::PipelineConfig sharing;
    sharing.synth.share_ancillas = true;
    lp::Pipeline fresh_pipe;
    lp::Pipeline shared_pipe(sharing);
    const auto source = lp::CircuitSource::from_bench("ham3");
    const auto fresh = fresh_pipe.resolve(source);
    const auto shared = shared_pipe.resolve(source);
    EXPECT_NE(fresh->info().cache_key, shared->info().cache_key);
}

// ------------------------------------------------------------------- batch --

TEST(PipelineBatch, ParallelMatchesSequential) {
    const auto make_requests = [] {
        std::vector<lp::EstimationRequest> requests;
        for (const char* name : {"ham3", "8bitadder", "hwb15ps"}) {
            for (const int side : {40, 60}) {
                lp::EstimationRequest request(lp::CircuitSource::from_bench(name));
                lf::PhysicalParams params;
                params.width = side;
                params.height = side;
                request.params = params;
                requests.push_back(std::move(request));
            }
        }
        return requests;
    };

    lp::Pipeline sequential_pipe;
    std::vector<lp::EstimationResult> sequential;
    for (const auto& request : make_requests()) {
        sequential.push_back(sequential_pipe.run(request));
    }

    lp::Pipeline parallel_pipe;
    const auto parallel = parallel_pipe.run_batch(make_requests(), 4);

    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < parallel.size(); ++i) {
        EXPECT_DOUBLE_EQ(parallel[i].estimate->latency_us,
                         sequential[i].estimate->latency_us)
            << "batch result " << i << " diverged";
        EXPECT_EQ(parallel[i].circuit.ft_ops, sequential[i].circuit.ft_ops);
    }
    // 3 distinct circuits across 6 requests: the cache still converges to
    // 3 builds regardless of thread interleaving.
    EXPECT_EQ(parallel_pipe.cached_circuits(), 3u);
}

TEST(PipelineBatch, ResultsCarryEveryFailureIndividually) {
    // The historical run_batch swallowed all failures but the first; the
    // per-request API must report each one, with the right codes, without
    // losing the successes around them.
    lp::Pipeline pipe;
    std::vector<lp::EstimationRequest> requests;
    requests.emplace_back(lp::CircuitSource::from_bench("ham3"));
    requests.emplace_back(lp::CircuitSource::from_path("/nonexistent/a.qasm"));
    requests.emplace_back(lp::CircuitSource::from_bench("8bitadder"));
    requests.emplace_back(lp::CircuitSource::from_path("/nonexistent/b.qasm"));
    lf::PhysicalParams bad;
    bad.width = -1;
    requests.emplace_back(lp::CircuitSource::from_bench("ham3"));
    requests.back().params = bad;

    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        const auto outcomes = pipe.run_batch_results(requests, threads);
        ASSERT_EQ(outcomes.size(), 5u);
        EXPECT_TRUE(outcomes[0].ok());
        EXPECT_TRUE(outcomes[2].ok());
        ASSERT_FALSE(outcomes[1].ok());
        ASSERT_FALSE(outcomes[3].ok());
        ASSERT_FALSE(outcomes[4].ok());
        // Two distinct failure kinds survive side by side.
        EXPECT_EQ(outcomes[1].status().code(), leqa::util::StatusCode::NotFound);
        EXPECT_EQ(outcomes[1].status().origin(), "resolve");
        EXPECT_EQ(outcomes[3].status().code(), leqa::util::StatusCode::NotFound);
        EXPECT_EQ(outcomes[4].status().code(), leqa::util::StatusCode::InvalidArgument);
        EXPECT_EQ(outcomes[4].status().origin(), "config");
        EXPECT_GT(outcomes[0].value().estimate->latency_us, 0.0);
    }
}

TEST(PipelineBatch, ColdConcurrentBatchBuildsOnce) {
    // Concurrent requests for the same uncached circuit must not duplicate
    // parse + synthesis: late arrivals wait on the in-flight builder.
    lp::Pipeline pipe;
    std::vector<lp::EstimationRequest> requests;
    for (int i = 0; i < 6; ++i) {
        requests.emplace_back(lp::CircuitSource::from_bench("gf2^16mult"));
    }
    const auto results = pipe.run_batch(requests, 4);
    EXPECT_EQ(results.size(), 6u);
    const lp::CacheStats stats = pipe.cache_stats();
    EXPECT_EQ(stats.circuit_misses, 1u);
    EXPECT_EQ(stats.circuit_hits, 5u);
    EXPECT_EQ(stats.graph_misses, 1u);
}

TEST(PipelineBatch, CacheStatsSnapshotsStayConsistentDuringBatch) {
    // cache_stats() copies the counters under the pipeline mutex; a reader
    // polling it while run_batch hammers the cache from four workers must
    // only ever observe monotone counters (every field is cumulative).
    // Under TSan (the CI tsan job runs this suite) this is the data-race
    // regression test for the CacheStats / surface-stats snapshot path.
    lp::Pipeline pipe;
    std::atomic<bool> done{false};
    std::atomic<int> violations{0};
    std::thread reader([&] {
        lp::CacheStats last;
        while (!done.load()) {
            const lp::CacheStats snap = pipe.cache_stats();
            if (snap.circuit_hits < last.circuit_hits) ++violations;
            if (snap.circuit_misses < last.circuit_misses) ++violations;
            if (snap.graph_hits < last.graph_hits) ++violations;
            if (snap.graph_misses < last.graph_misses) ++violations;
            if (snap.surface_hits < last.surface_hits) ++violations;
            if (snap.surface_recomputes < last.surface_recomputes) ++violations;
            last = snap;
        }
    });

    std::vector<lp::EstimationRequest> requests;
    for (int round = 0; round < 4; ++round) {
        for (const char* name : {"ham3", "8bitadder", "hwb15ps"}) {
            requests.emplace_back(lp::CircuitSource::from_bench(name));
        }
    }
    const auto results = pipe.run_batch(requests, 4);
    done.store(true);
    reader.join();

    EXPECT_EQ(results.size(), requests.size());
    EXPECT_EQ(violations.load(), 0);
    const lp::CacheStats final_stats = pipe.cache_stats();
    EXPECT_EQ(final_stats.circuit_misses, 3u); // three distinct circuits
    EXPECT_EQ(final_stats.circuit_hits, requests.size() - 3u);
}

TEST(PipelineBatch, InFlightDeduplicationUnderDirectContention) {
    // N threads resolving the same cold bench: source concurrently must
    // converge to exactly one parse+synthesis (one circuit_miss); the other
    // N-1 resolvers wait on the in-flight builder and count as hits.
    constexpr std::size_t kThreads = 8;
    lp::Pipeline pipe;
    const auto source = lp::CircuitSource::from_bench("gf2^16mult");

    std::promise<void> go;
    std::shared_future<void> start = go.get_future().share();
    std::vector<lp::CachedCircuitPtr> entries(kThreads);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            start.wait(); // line every thread up on the cold cache
            entries[t] = pipe.resolve(source);
        });
    }
    go.set_value();
    for (std::thread& thread : threads) thread.join();

    const lp::CacheStats stats = pipe.cache_stats();
    EXPECT_EQ(stats.circuit_misses, 1u);
    EXPECT_EQ(stats.circuit_hits, kThreads - 1);
    // Every thread got the same cached object -- no duplicate synthesis.
    for (const auto& entry : entries) {
        ASSERT_NE(entry, nullptr);
        EXPECT_EQ(entry.get(), entries.front().get());
    }
    EXPECT_EQ(pipe.cached_circuits(), 1u);
}

TEST(PipelineBatch, MapModeProducesMapping) {
    lp::Pipeline pipe;
    lp::EstimationRequest request(lp::CircuitSource::from_bench("ham3"),
                                  lp::RunMode::Both);
    const auto result = pipe.run(request);
    ASSERT_TRUE(result.estimate.has_value());
    ASSERT_TRUE(result.mapping.has_value());
    EXPECT_GT(result.estimate->latency_us, 0.0);
    EXPECT_GT(result.mapping->latency_us, 0.0);
    EXPECT_GE(result.times.total_s, 0.0);
}

// ------------------------------------------------------------------ errors --

TEST(PipelineSweeps, RunControlCancelsBeforeWork) {
    // A pre-set cancel flag aborts at the checkpoint before resolve: no
    // circuit is ever parsed or synthesized.
    lp::Pipeline pipe;
    lp::RunControl control;
    control.cancel.store(true);
    EXPECT_THROW((void)pipe.sweep_fabric_sides(lp::CircuitSource::from_bench("ham3"),
                                               {40, 50, 60}, &control),
                 leqa::util::CancelledError);
    EXPECT_EQ(pipe.cache_stats().circuit_misses, 0u);
    EXPECT_THROW((void)pipe.calibrate({lp::CircuitSource::from_bench("ham3")}, {},
                                      &control),
                 leqa::util::CancelledError);
    EXPECT_EQ(pipe.cache_stats().circuit_misses, 0u);
}

TEST(PipelineSweeps, BetweenPointsHookAbortsMidSweep) {
    // The core sweeps call the between-points hook before every point, so a
    // cancellation/deadline raised there stops a long sweep mid-way.
    lp::Pipeline pipe;
    const auto source = lp::CircuitSource::from_bench("ham3");
    const auto full = pipe.sweep_fabric_sides(source, {40, 50, 60});
    ASSERT_EQ(full.points.size(), 3u);

    const lp::CachedCircuitPtr entry = pipe.resolve(source);
    int calls = 0;
    EXPECT_THROW((void)leqa::core::sweep_fabric_sides(
                     entry->profile(), lf::PhysicalParams{}, {40, 50, 60}, {},
                     [&] {
                         if (++calls == 3) {
                             throw leqa::util::CancelledError("stop mid-sweep");
                         }
                     }),
                 leqa::util::CancelledError);
    EXPECT_EQ(calls, 3); // one call per point; the third aborted the sweep
}

TEST(PipelineErrors, MalformedNetlistPathPropagates) {
    lp::Pipeline pipe;
    lp::EstimationRequest request(
        lp::CircuitSource::from_path("/nonexistent/leqa/circuit.qasm"));
    EXPECT_THROW((void)pipe.run(request), InputError);
}

TEST(PipelineErrors, MalformedNetlistContentPropagates) {
    TempDir dir;
    const std::string path = dir.file("broken.qasm");
    write_text(path, "OPENQASM 2.0;\nqreg q[2];\nbogusgate q[0];\n");
    lp::Pipeline pipe;
    lp::EstimationRequest request(lp::CircuitSource::from_path(path));
    EXPECT_THROW((void)pipe.run(request), leqa::util::Error);
}

TEST(PipelineErrors, BatchRethrowsFirstFailure) {
    lp::Pipeline pipe;
    std::vector<lp::EstimationRequest> requests;
    requests.emplace_back(lp::CircuitSource::from_bench("ham3"));
    requests.emplace_back(lp::CircuitSource::from_path("/nonexistent/a.qasm"));
    requests.emplace_back(lp::CircuitSource::from_bench("ham3"));
    EXPECT_THROW((void)pipe.run_batch(requests, 2), InputError);
    EXPECT_THROW((void)pipe.run_batch(requests, 1), InputError);
}

TEST(PipelineErrors, InvalidParamOverrideRejected) {
    lp::Pipeline pipe;
    lp::EstimationRequest request(lp::CircuitSource::from_bench("ham3"));
    lf::PhysicalParams params;
    params.width = -1;
    request.params = params;
    EXPECT_THROW((void)pipe.run(request), InputError);
}

// ------------------------------------------------------------- calibration --

TEST(PipelineCalibration, CalibratesAndAppliesV) {
    lp::Pipeline pipe;
    const std::vector<lp::CircuitSource> training = {
        lp::CircuitSource::from_bench("ham3")};
    const auto result = pipe.calibrate(training);
    EXPECT_GT(result.v, 0.0);
    pipe.apply_calibration(result);
    EXPECT_DOUBLE_EQ(pipe.config().params.v, result.v);
}

TEST(PipelineCalibration, VSearchRunsOnCachedGraphs) {
    lp::Pipeline pipe;
    const auto training =
        pipe.training_samples({lp::CircuitSource::from_bench("ham3")});
    ASSERT_EQ(training.graph_samples.size(), 1u);
    EXPECT_EQ(pipe.cache_stats().graph_misses, 1u);

    // The whole v search (hundreds of estimator evaluations) borrows the
    // cached QODG/IIG pair; the session never builds a second one.
    const auto result = pipe.calibrate(training);
    EXPECT_GT(result.evaluations, 50u);
    EXPECT_EQ(pipe.cache_stats().graph_misses, 1u);

    // And calibrating from sources resolves the same cached entry.
    (void)pipe.calibrate({lp::CircuitSource::from_bench("ham3")});
    EXPECT_EQ(pipe.cache_stats().graph_misses, 1u);
    EXPECT_EQ(pipe.cache_stats().circuit_misses, 1u);
}

// ----------------------------------------------------------------- reports --

TEST(PipelineReport, BatchJsonContainsResults) {
    lp::Pipeline pipe;
    std::vector<lp::EstimationRequest> requests;
    requests.emplace_back(lp::CircuitSource::from_bench("ham3"), lp::RunMode::Both);
    requests.emplace_back(lp::CircuitSource::from_bench("ham3"));
    requests[1].label = "ham3-estimate-only";
    const auto results = pipe.run_batch(requests, 1);

    const std::string json = leqa::report::batch_to_json(results);
    EXPECT_NE(json.find("\"tool\":\"leqa-pipeline\""), std::string::npos);
    EXPECT_NE(json.find("\"count\":2"), std::string::npos);
    EXPECT_NE(json.find("\"ham3-estimate-only\""), std::string::npos);
    EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
    EXPECT_NE(json.find("\"stage_times_s\""), std::string::npos);
    // The estimate-only result has a null mapping.
    EXPECT_NE(json.find("\"mapping\":null"), std::string::npos);

    const std::string single = leqa::report::result_to_json(results[0]);
    EXPECT_NE(single.find("\"cache_key\""), std::string::npos);
    EXPECT_NE(single.find("\"mapping\":{"), std::string::npos);
}

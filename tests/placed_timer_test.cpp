// Property tests for the placement-dependent timing model and the
// incremental re-timing engine (core/placed.h).  The load-bearing contract
// is *bit-exact parity*: after any sequence of swap/relocate moves the
// timer's arrivals and latency must equal a from-scratch
// Qodg::longest_path over the same delay vector down to the last bit, and
// re-applying a move must restore every arrival exactly.  The suite drives
// >= 10k randomized moves across grid, torus, and line fabrics to pin that
// contract down.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "benchgen/suite.h"
#include "core/placed.h"
#include "fabric/geometry.h"
#include "fabric/topology.h"
#include "pipeline/pipeline.h"
#include "qodg/qodg.h"
#include "qspr/placement.h"
#include "synth/ft_synth.h"
#include "util/error.h"
#include "util/rng.h"

namespace lc = leqa::core;
namespace lf = leqa::fabric;

namespace {

struct TestCircuit {
    leqa::circuit::Circuit ft;
    std::unique_ptr<leqa::qodg::Qodg> graph;
};

TestCircuit ft_bench(const std::string& bench) {
    TestCircuit out{
        leqa::synth::ft_synthesize(
            leqa::pipeline::parse_source("bench:" + bench).load())
            .circuit,
        nullptr};
    out.graph = std::make_unique<leqa::qodg::Qodg>(out.ft);
    return out;
}

lf::PhysicalParams params_for(lf::TopologyKind kind, int width, int height) {
    lf::PhysicalParams params;
    params.topology = kind;
    params.width = width;
    params.height = height;
    return params;
}

std::vector<lf::UlbId> random_homes(const lf::PhysicalParams& params,
                                    std::size_t num_qubits, std::uint64_t seed) {
    return leqa::qspr::initial_placement(
        lf::FabricGeometry(lf::make_topology(params)), num_qubits,
        leqa::qspr::PlacementStrategy::Random, seed);
}

/// Bitwise double equality (NaN-free domain; distinguishes -0.0 vs 0.0 the
/// same way the parity contract does: by representation).
bool bit_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void expect_bit_equal(const std::vector<double>& got,
                      const std::vector<double>& want, const char* what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_TRUE(bit_equal(got[i], want[i]))
            << what << " diverges at node " << i << ": " << got[i] << " vs "
            << want[i];
    }
}

/// The workhorse: random swap/relocate moves with full-recompute parity
/// checked after every single move, plus bound soundness along the way.
void drive_moves(const TestCircuit& tc, const lf::PhysicalParams& params,
                 std::size_t moves, std::uint64_t seed) {
    lc::PlacedTimer timer(*tc.graph, tc.ft, params,
                          random_homes(params, tc.ft.num_qubits(), seed));
    leqa::util::Rng rng(seed * 977u + 13u);
    const std::size_t nq = tc.ft.num_qubits();
    const std::size_t nu = timer.num_ulbs();

    std::vector<lf::UlbId> free_ulbs;
    for (lf::UlbId ulb = 0; ulb < static_cast<lf::UlbId>(nu); ++ulb) {
        if (timer.occupant(ulb) == lc::PlacedTimer::kNoQubit) {
            free_ulbs.push_back(ulb);
        }
    }

    for (std::size_t move = 0; move < moves; ++move) {
        const bool relocate = !free_ulbs.empty() && rng.chance(0.4);
        double latency = 0.0;
        if (relocate) {
            const std::size_t q = rng.index(nq);
            const std::size_t slot = rng.index(free_ulbs.size());
            const lf::UlbId from = timer.homes()[q];
            const lf::UlbId to = free_ulbs[slot];
            const double bound = timer.relocate_lower_bound(q, to);
            latency = timer.apply_relocate(q, to);
            EXPECT_LE(bound, latency) << "relocate bound not a lower bound";
            free_ulbs[slot] = from;
        } else {
            const std::size_t q1 = rng.index(nq);
            std::size_t q2 = rng.index(nq - 1);
            if (q2 >= q1) ++q2;
            const double bound = timer.swap_lower_bound(q1, q2);
            latency = timer.apply_swap(q1, q2);
            EXPECT_LE(bound, latency) << "swap bound not a lower bound";
        }

        const leqa::qodg::LongestPath full = tc.graph->longest_path(timer.delays());
        ASSERT_TRUE(bit_equal(latency, full.length))
            << "latency diverges from full longest_path at move " << move;
        ASSERT_TRUE(bit_equal(timer.latency_us(), full.length));
        expect_bit_equal(timer.arrivals(), full.distance, "arrivals");
    }
}

} // namespace

// ------------------------------------------------------------ delay model --

TEST(PlacedDelays, MatchesTimerAndHopModel) {
    const TestCircuit tc = ft_bench("ham3");
    const lf::PhysicalParams params = params_for(lf::TopologyKind::Grid, 6, 6);
    const auto topology = lf::make_topology(params);
    const std::vector<lf::UlbId> homes =
        random_homes(params, tc.ft.num_qubits(), 3);

    const std::vector<double> delays = lc::placed_node_delays(
        *tc.graph, tc.ft, *topology, params, homes);
    lc::PlacedTimer timer(*tc.graph, tc.ft, params, homes);
    expect_bit_equal(timer.delays(), delays, "delays");

    // Spot-check the model: start/end free, a CNOT pays hops, a one-qubit
    // gate pays the fixed routing latency.
    ASSERT_EQ(delays.size(), tc.graph->num_nodes());
    EXPECT_EQ(delays.front(), 0.0);
    EXPECT_EQ(delays.back(), 0.0);
    for (std::size_t i = 0; i < tc.graph->num_ops(); ++i) {
        const leqa::circuit::Gate& gate = tc.ft.gates()[i];
        const double delay = delays[tc.graph->node_of_gate(i)];
        if (gate.kind == leqa::circuit::GateKind::Cnot) {
            const int hops = topology->distance(
                topology->ulb_coord(homes[gate.controls.at(0)]),
                topology->ulb_coord(homes[gate.targets.at(0)]));
            EXPECT_EQ(delay, params.d_cnot_us + params.t_move_us * hops);
        } else {
            EXPECT_EQ(delay, params.delay_us(gate.kind) +
                                 params.one_qubit_routing_latency_us());
        }
    }

    // And the initial latency is the full longest path over those delays.
    EXPECT_EQ(timer.latency_us(), tc.graph->longest_path(delays).length);
}

// -------------------------------------------------- 10k-move parity sweep --

TEST(PlacedTimer, ParityGrid) {
    const TestCircuit ham3 = ft_bench("ham3");
    const TestCircuit adder = ft_bench("8bitadder");
    drive_moves(ham3, params_for(lf::TopologyKind::Grid, 5, 5), 2200, 11);
    drive_moves(adder, params_for(lf::TopologyKind::Grid, 7, 7), 1400, 12);
}

TEST(PlacedTimer, ParityTorus) {
    const TestCircuit ham3 = ft_bench("ham3");
    const TestCircuit adder = ft_bench("8bitadder");
    drive_moves(ham3, params_for(lf::TopologyKind::Torus, 5, 5), 2200, 21);
    drive_moves(adder, params_for(lf::TopologyKind::Torus, 6, 6), 1400, 22);
}

TEST(PlacedTimer, ParityLine) {
    const TestCircuit ham3 = ft_bench("ham3");
    const TestCircuit adder = ft_bench("8bitadder");
    drive_moves(ham3, params_for(lf::TopologyKind::Line, 9, 1), 2200, 31);
    drive_moves(adder, params_for(lf::TopologyKind::Line, 30, 1), 1400, 32);
}

// ------------------------------------------------------- revert round-trip --

TEST(PlacedTimer, SwapRevertRestoresStateBitForBit) {
    const TestCircuit tc = ft_bench("8bitadder");
    const lf::PhysicalParams params = params_for(lf::TopologyKind::Grid, 7, 7);
    lc::PlacedTimer timer(*tc.graph, tc.ft, params,
                          random_homes(params, tc.ft.num_qubits(), 5));
    leqa::util::Rng rng(42);
    const std::size_t nq = tc.ft.num_qubits();

    for (int round = 0; round < 200; ++round) {
        const std::vector<double> arrivals = timer.arrivals();
        const std::vector<double> tails = timer.tails();
        const std::vector<lf::UlbId> homes = timer.homes();
        const double latency = timer.latency_us();

        const std::size_t q1 = rng.index(nq);
        std::size_t q2 = rng.index(nq - 1);
        if (q2 >= q1) ++q2;
        (void)timer.apply_swap(q1, q2);
        (void)timer.apply_swap(q1, q2); // the inverse move

        EXPECT_EQ(timer.homes(), homes);
        ASSERT_TRUE(bit_equal(timer.latency_us(), latency));
        expect_bit_equal(timer.arrivals(), arrivals, "arrivals after revert");
        expect_bit_equal(timer.tails(), tails, "tails after revert");
    }
}

TEST(PlacedTimer, RelocateRevertRestoresStateBitForBit) {
    const TestCircuit tc = ft_bench("ham3");
    const lf::PhysicalParams params = params_for(lf::TopologyKind::Torus, 4, 4);
    lc::PlacedTimer timer(*tc.graph, tc.ft, params,
                          random_homes(params, tc.ft.num_qubits(), 6));
    leqa::util::Rng rng(43);
    const std::size_t nq = tc.ft.num_qubits();

    for (int round = 0; round < 200; ++round) {
        const std::vector<double> arrivals = timer.arrivals();
        const double latency = timer.latency_us();

        const std::size_t q = rng.index(nq);
        const lf::UlbId from = timer.homes()[q];
        lf::UlbId to = static_cast<lf::UlbId>(rng.index(timer.num_ulbs()));
        while (timer.occupant(to) != lc::PlacedTimer::kNoQubit) {
            to = static_cast<lf::UlbId>(rng.index(timer.num_ulbs()));
        }
        (void)timer.apply_relocate(q, to);
        (void)timer.apply_relocate(q, from); // the inverse move

        ASSERT_TRUE(bit_equal(timer.latency_us(), latency));
        expect_bit_equal(timer.arrivals(), arrivals, "arrivals after revert");
    }
}

// ------------------------------------------------------------- validation --

TEST(PlacedTimer, RejectsBadHomes) {
    const TestCircuit tc = ft_bench("ham3");
    const lf::PhysicalParams params = params_for(lf::TopologyKind::Grid, 4, 4);

    // Wrong cardinality.
    EXPECT_THROW(lc::PlacedTimer(*tc.graph, tc.ft, params, {0, 1}),
                 leqa::util::InputError);
    // Out of range.
    EXPECT_THROW(lc::PlacedTimer(*tc.graph, tc.ft, params, {0, 1, 16}),
                 leqa::util::InputError);
    // Duplicate home.
    EXPECT_THROW(lc::PlacedTimer(*tc.graph, tc.ft, params, {3, 3, 7}),
                 leqa::util::InputError);
}

TEST(PlacedTimer, RejectsBadMoves) {
    const TestCircuit tc = ft_bench("ham3");
    const lf::PhysicalParams params = params_for(lf::TopologyKind::Grid, 4, 4);
    lc::PlacedTimer timer(*tc.graph, tc.ft, params, {0, 1, 2});

    EXPECT_THROW((void)timer.apply_swap(0, 0), leqa::util::InputError);
    EXPECT_THROW((void)timer.apply_swap(0, 99), leqa::util::InputError);
    // Relocate target occupied / out of range.
    EXPECT_THROW((void)timer.apply_relocate(0, 1), leqa::util::InputError);
    EXPECT_THROW((void)timer.apply_relocate(0, 16), leqa::util::InputError);
    EXPECT_THROW((void)timer.apply_relocate(99, 5), leqa::util::InputError);
}

// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P) over
// fabric geometries, channel capacities, circuit shapes and random seeds:
// the invariants every configuration must satisfy.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "core/engine.h"
#include "core/leqa.h"
#include "fabric/geometry.h"
#include "fabric/params.h"
#include "fabric/topology.h"
#include "graph/csr.h"
#include "iig/iig.h"
#include "mathx/queueing.h"
#include "qodg/qodg.h"
#include "qspr/qspr.h"
#include "util/rng.h"

namespace lc = leqa::circuit;
namespace lcore = leqa::core;
namespace lf = leqa::fabric;
namespace lm = leqa::mathx;
namespace lq = leqa::qspr;

namespace {

lc::Circuit random_ft_circuit(std::size_t qubits, std::size_t gates, std::uint64_t seed) {
    leqa::util::Rng rng(seed);
    lc::Circuit circ(qubits);
    for (std::size_t g = 0; g < gates; ++g) {
        const auto picks = rng.sample_without_replacement(qubits, 2);
        switch (rng.index(5)) {
            case 0: circ.h(static_cast<lc::Qubit>(picks[0])); break;
            case 1: circ.t(static_cast<lc::Qubit>(picks[0])); break;
            case 2: circ.x(static_cast<lc::Qubit>(picks[0])); break;
            default:
                circ.cnot(static_cast<lc::Qubit>(picks[0]),
                          static_cast<lc::Qubit>(picks[1]));
                break;
        }
    }
    return circ;
}

} // namespace

// --------------------------------------------------- coverage properties --

class CoverageSweep : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CoverageSweep, ProbabilitiesAreValidAndSumToZoneArea) {
    const auto [a, b, s] = GetParam();
    if (s > std::min(a, b)) GTEST_SKIP() << "zone larger than fabric";
    double sum = 0.0;
    for (int x = 1; x <= a; ++x) {
        for (int y = 1; y <= b; ++y) {
            const double p = lcore::LeqaEstimator::coverage_probability(x, y, a, b, s);
            ASSERT_GE(p, 0.0);
            ASSERT_LE(p, 1.0);
            sum += p;
        }
    }
    // Expected covered cells per placement = s^2 (Eq. 5 integrates to the
    // zone area).
    EXPECT_NEAR(sum, static_cast<double>(s) * s, 1e-6);
}

TEST_P(CoverageSweep, SurfacesSatisfyEquation3) {
    const auto [a, b, s] = GetParam();
    if (s > std::min(a, b)) GTEST_SKIP() << "zone larger than fabric";
    std::vector<double> coverage;
    for (int x = 1; x <= a; ++x) {
        for (int y = 1; y <= b; ++y) {
            coverage.push_back(lcore::LeqaEstimator::coverage_probability(x, y, a, b, s));
        }
    }
    const long long q_total = 9;
    double total = 0.0;
    for (long long q = 0; q <= q_total; ++q) {
        const double surface =
            lcore::LeqaEstimator::expected_surface(coverage, q_total, q);
        ASSERT_GE(surface, 0.0);
        total += surface;
    }
    EXPECT_NEAR(total, static_cast<double>(a) * b, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Fabrics, CoverageSweep,
    ::testing::Values(std::tuple{4, 4, 1}, std::tuple{4, 4, 2}, std::tuple{8, 5, 3},
                      std::tuple{12, 12, 5}, std::tuple{20, 7, 7},
                      std::tuple{30, 30, 6}, std::tuple{60, 60, 6},
                      std::tuple{1, 9, 1}, std::tuple{16, 16, 16}));

// ----------------------------------------------------- queueing properties --

class QueueSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(QueueSweep, Equation8And11AreConsistent) {
    const auto [nc, d] = GetParam();
    double previous = 0.0;
    for (double q = 0.0; q <= 30.0; q += 0.5) {
        const double delay = lm::congested_delay(q, nc, d);
        // Monotone non-decreasing in q.
        ASSERT_GE(delay, previous - 1e-12);
        previous = delay;
        // Never below the uncongested floor.
        ASSERT_GE(delay, d - 1e-12);
        if (q > nc) {
            // Congested branch equals Little's-law wait (Eq. 11).
            ASSERT_NEAR(delay, lm::average_wait_from_queue_length(q, nc, d), 1e-9);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Channels, QueueSweep,
                         ::testing::Combine(::testing::Values(1, 2, 5, 10),
                                            ::testing::Values(100.0, 820.0, 5000.0)));

// ------------------------------------------------------- LEQA estimator --

class EstimatorSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EstimatorSweep, EstimateIsFinitepositiveAndScalesWithFabric) {
    const auto [side, nc] = GetParam();
    const auto circ = random_ft_circuit(20, 400, 77);
    lf::PhysicalParams params;
    params.width = side;
    params.height = side;
    params.nc = nc;
    const auto estimate = lcore::LeqaEstimator(params).estimate(circ);
    ASSERT_TRUE(std::isfinite(estimate.latency_us));
    ASSERT_GT(estimate.latency_us, 0.0);
    // Estimate is bounded below by the pure gate-delay critical path.
    ASSERT_GE(estimate.latency_us, estimate.critical_gate_delay_us - 1e-6);
    // Covered area cannot exceed the fabric.
    ASSERT_LE(estimate.covered_area,
              static_cast<double>(params.area()) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(FabricsAndChannels, EstimatorSweep,
                         ::testing::Combine(::testing::Values(10, 25, 60, 90),
                                            ::testing::Values(1, 5, 10)));

class EstimatorSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EstimatorSeedSweep, CriticalCensusConsistentAcrossRandomCircuits) {
    const auto circ = random_ft_circuit(14, 250, GetParam());
    const lf::PhysicalParams params;
    const auto estimate = lcore::LeqaEstimator(params).estimate(circ);
    // Reconstruct Eq. 1 from the census and the model terms.
    double reconstructed = 0.0;
    for (std::size_t k = 0; k < lc::kGateKindCount; ++k) {
        const auto kind = static_cast<lc::GateKind>(k);
        const auto count = estimate.critical_census.by_kind[k];
        if (count == 0) continue;
        const double routing = kind == lc::GateKind::Cnot ? estimate.l_cnot_avg_us
                                                          : estimate.l_one_qubit_avg_us;
        reconstructed += static_cast<double>(count) * (params.delay_us(kind) + routing);
    }
    EXPECT_NEAR(reconstructed, estimate.latency_us, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EstimatorSeedSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

// ------------------------------------------------------------- QSPR sweep --

class QsprSweep
    : public ::testing::TestWithParam<
          std::tuple<lq::PlacementStrategy, lq::RoutingAlgorithm, lq::SchedulePolicy>> {};

TEST_P(QsprSweep, ScheduleValidUnderAllConfigurations) {
    const auto [placement, routing, schedule] = GetParam();
    const auto circ = random_ft_circuit(10, 150, 31);
    lf::PhysicalParams params;
    params.width = 12;
    params.height = 12;
    lq::QsprOptions options;
    options.placement = placement;
    options.routing = routing;
    options.schedule = schedule;
    options.collect_schedule = true;
    options.seed = 5;
    const auto result = lq::QsprMapper(params, options).map(circ);
    ASSERT_EQ(result.schedule.size(), circ.size());

    // Dependency validity: per-qubit intervals must not overlap.
    std::vector<double> qubit_busy_until(circ.num_qubits(), 0.0);
    std::vector<std::size_t> issue_of_gate(circ.size());
    for (std::size_t i = 0; i < result.schedule.size(); ++i) {
        issue_of_gate[result.schedule[i].gate_index] = i;
    }
    for (std::size_t g = 0; g < circ.size(); ++g) {
        const auto& op = result.schedule[issue_of_gate[g]];
        for (const auto q : circ.gate(g).qubits()) {
            ASSERT_GE(op.start_us + 1e-6, qubit_busy_until[q])
                << "config " << static_cast<int>(placement) << "/"
                << static_cast<int>(routing) << "/" << static_cast<int>(schedule);
            qubit_busy_until[q] = op.finish_us;
        }
    }
    // Makespan consistency.
    double makespan = 0.0;
    for (const auto& op : result.schedule) makespan = std::max(makespan, op.finish_us);
    EXPECT_DOUBLE_EQ(result.latency_us, makespan);
    // Determinism.
    const auto again = lq::QsprMapper(params, options).map(circ);
    EXPECT_DOUBLE_EQ(again.latency_us, result.latency_us);
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, QsprSweep,
    ::testing::Combine(::testing::Values(lq::PlacementStrategy::CenteredBlock,
                                         lq::PlacementStrategy::RowMajor,
                                         lq::PlacementStrategy::Random),
                       ::testing::Values(lq::RoutingAlgorithm::Xy,
                                         lq::RoutingAlgorithm::Maze),
                       ::testing::Values(lq::SchedulePolicy::ProgramOrder,
                                         lq::SchedulePolicy::CriticalPathPriority)));

// ------------------------------------------------------ geometry property --

class GeometrySweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GeometrySweep, RoutesConnectAndRingsPartition) {
    const auto [w, h] = GetParam();
    const lf::FabricGeometry geo(w, h);
    leqa::util::Rng rng(71);
    for (int trial = 0; trial < 20; ++trial) {
        const lf::UlbCoord a{static_cast<int>(rng.index(static_cast<std::size_t>(w))),
                             static_cast<int>(rng.index(static_cast<std::size_t>(h)))};
        const lf::UlbCoord b{static_cast<int>(rng.index(static_cast<std::size_t>(w))),
                             static_cast<int>(rng.index(static_cast<std::size_t>(h)))};
        const auto route = geo.xy_route(a, b);
        ASSERT_EQ(route.size(), static_cast<std::size_t>(geo.manhattan(a, b)));
        for (const auto segment : route) {
            ASSERT_GE(segment, 0);
            ASSERT_LT(static_cast<std::size_t>(segment), geo.num_segments());
        }
    }
    std::size_t counted = 0;
    for (int r = 0; r <= std::max(w, h); ++r) {
        counted += geo.ring({w / 2, h / 2}, r).size();
    }
    EXPECT_EQ(counted, geo.num_ulbs());
}

INSTANTIATE_TEST_SUITE_P(Shapes, GeometrySweep,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 12},
                                           std::pair{12, 1}, std::pair{3, 17},
                                           std::pair{17, 3}, std::pair{16, 16},
                                           std::pair{60, 60}));

// ------------------------------------------- structured estimator fuzzing --
//
// The structured counterpart of the byte-level fuzz/ harnesses: each seed
// generates a random circuit AND a random small topology (benchgen-style,
// drawn from one Rng stream), then checks the whole-system invariants the
// byte fuzzers cannot reach — the structural validators stay clean on every
// generated instance, and on grid fabrics the staged engine reproduces the
// golden single-pass estimator to 1e-9 relative (the DESIGN.md parity bar,
// here on adversarially random rather than benchmark circuits).

class StructuredFuzzSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StructuredFuzzSweep, RandomCircuitAndTopologyHoldEveryContract) {
    leqa::util::Rng rng(GetParam());

    // Random instance: circuit shape and fabric drawn like fuzzer bytes.
    const std::size_t qubits = 2 + rng.index(14);        // [2, 15]
    const std::size_t gates = 1 + rng.index(200);        // [1, 200]
    const auto circ = random_ft_circuit(qubits, gates, rng.next());
    lf::PhysicalParams params;
    params.width = 3 + static_cast<int>(rng.index(10));  // [3, 12]
    params.height = 3 + static_cast<int>(rng.index(10));
    params.nc = 1 + static_cast<int>(rng.index(6));
    params.v = 0.0005 * static_cast<double>(1 + rng.index(40)); // [5e-4, 2e-2]
    const auto kind_pick = rng.index(3);
    params.topology = kind_pick == 0   ? lf::TopologyKind::Grid
                      : kind_pick == 1 ? lf::TopologyKind::Torus
                                       : lf::TopologyKind::Line;
    if (params.topology == lf::TopologyKind::Line) params.height = 1;

    // The QODG of any generated circuit is a clean topological DAG.
    const leqa::qodg::Qodg graph(circ);
    ASSERT_EQ(leqa::graph::validate_csr(graph.csr()), "");

    // The topology and its whole coverage family are structurally clean.
    const auto topology = lf::make_topology(params);
    ASSERT_EQ(lf::validate_topology(*topology), "") << topology->name();
    const int max_extent = params.topology == lf::TopologyKind::Line
                               ? params.width
                               : std::min(params.width, params.height);
    for (int extent = 1; extent <= max_extent; ++extent) {
        const double expected_mass =
            params.topology == lf::TopologyKind::Line
                ? static_cast<double>(extent)
                : static_cast<double>(extent) * extent;
        ASSERT_EQ(lf::validate_coverage(topology->coverage_histogram(extent),
                                        expected_mass),
                  "")
            << topology->name() << " extent " << extent;
    }

    // Estimates stay finite and bounded on every topology kind.
    const lcore::LeqaEstimator estimator(params);
    const auto estimate = estimator.estimate(circ);
    ASSERT_TRUE(std::isfinite(estimate.latency_us));
    ASSERT_GT(estimate.latency_us, 0.0);
    ASSERT_LE(estimate.covered_area, static_cast<double>(params.area()) + 1e-6);

    // Grid instances additionally pass the staged-vs-golden parity bar.
    if (params.topology == lf::TopologyKind::Grid) {
        const leqa::iig::Iig iig(circ);
        const auto profile = lcore::CircuitProfile::build(graph, iig);
        const auto staged = lcore::EstimationEngine(params).estimate(profile);
        const auto reference = estimator.estimate_reference(graph, iig);
        const double scale = std::max(
            {std::abs(reference.latency_us), std::abs(staged.latency_us), 1e-300});
        EXPECT_LE(std::abs(staged.latency_us - reference.latency_us) / scale, 1e-9)
            << staged.latency_us << " vs " << reference.latency_us;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructuredFuzzSweep,
                         ::testing::Range<std::uint64_t>(1000, 1024));

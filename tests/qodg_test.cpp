// Tests for the quantum operation dependency graph: construction (start/end
// sentinels, merged parallel edges), longest path, critical-path census.
#include <gtest/gtest.h>

#include "qodg/qodg.h"
#include "synth/decompose.h"
#include "util/error.h"
#include "util/rng.h"

namespace lc = leqa::circuit;
namespace lq = leqa::qodg;

namespace {

/// ham3-style toy circuit used across tests (paper Figure 2 flavor):
/// a Toffoli decomposition followed by a few FT gates.
lc::Circuit ham3_ft() {
    lc::Circuit circ(3, "ham3");
    leqa::synth::emit_toffoli_ft(0, 1, 2, [&](const lc::Gate& g) { circ.add_gate(g); });
    circ.cnot(1, 2).cnot(0, 1).t(0).cnot(2, 0); // 4 trailing FT ops -> 19 total
    return circ;
}

std::vector<double> unit_delays(const lq::Qodg& graph) {
    return graph.node_delays([](lc::GateKind) { return 1.0; });
}

} // namespace

TEST(Qodg, EmptyCircuit) {
    const lc::Circuit circ(0);
    const lq::Qodg graph(circ);
    EXPECT_EQ(graph.num_nodes(), 2u); // start + end
    EXPECT_EQ(graph.num_ops(), 0u);
    EXPECT_EQ(graph.num_edges(), 1u); // start -> end
    const auto lp = graph.longest_path(unit_delays(graph));
    EXPECT_DOUBLE_EQ(lp.length, 0.0);
}

TEST(Qodg, UnusedQubitsDoNotDuplicateStartEndEdge) {
    lc::Circuit circ(4); // 4 idle qubits
    const lq::Qodg graph(circ);
    // All four qubit chains collapse into a single merged start->end edge.
    EXPECT_EQ(graph.num_edges(), 1u);
}

TEST(Qodg, LinearChain) {
    lc::Circuit circ(1);
    circ.h(0).t(0).h(0);
    const lq::Qodg graph(circ);
    EXPECT_EQ(graph.num_nodes(), 5u);
    EXPECT_EQ(graph.num_edges(), 4u); // start-1-2-3-end
    const auto lp = graph.longest_path(unit_delays(graph));
    EXPECT_DOUBLE_EQ(lp.length, 3.0);
    const auto path = graph.critical_path(lp);
    ASSERT_EQ(path.size(), 5u);
    EXPECT_EQ(path.front(), graph.start());
    EXPECT_EQ(path.back(), graph.end());
}

TEST(Qodg, ParallelEdgesAreMerged) {
    // Two CNOTs on the same qubit pair: the second depends on the first
    // through BOTH qubits, but only one edge must exist.
    lc::Circuit circ(2);
    circ.cnot(0, 1).cnot(0, 1);
    const lq::Qodg graph(circ);
    // Edges: start->1 (merged from two operands), 1->2 (merged), 2->end
    // (merged) = 3.
    EXPECT_EQ(graph.num_edges(), 3u);
    EXPECT_EQ(graph.successors(graph.node_of_gate(0)).size(), 1u);
}

TEST(Qodg, IndependentGatesRunInParallel) {
    lc::Circuit circ(4);
    circ.h(0).h(1).h(2).h(3);
    const lq::Qodg graph(circ);
    const auto lp = graph.longest_path(unit_delays(graph));
    EXPECT_DOUBLE_EQ(lp.length, 1.0); // all in one level
    EXPECT_EQ(graph.num_edges(), 8u); // start->each, each->end
}

TEST(Qodg, DiamondDependency) {
    // cnot(0,1); h(0) and h(1) in parallel; cnot(0,1) again.
    lc::Circuit circ(2);
    circ.cnot(0, 1).h(0).h(1).cnot(0, 1);
    const lq::Qodg graph(circ);
    const auto lp = graph.longest_path(unit_delays(graph));
    EXPECT_DOUBLE_EQ(lp.length, 3.0);

    // Weighted: making one branch heavy must route the critical path
    // through it.
    auto delays = graph.node_delays(
        [](lc::GateKind kind) { return kind == lc::GateKind::H ? 1.0 : 2.0; });
    delays[graph.node_of_gate(2)] = 50.0; // h(1) branch
    const auto weighted = graph.longest_path(delays);
    EXPECT_DOUBLE_EQ(weighted.length, 2.0 + 50.0 + 2.0);
    const auto path = graph.critical_path(weighted);
    ASSERT_EQ(path.size(), 5u); // start, cnot, h(1), cnot, end
    EXPECT_EQ(path[2], graph.node_of_gate(2));
}

TEST(Qodg, Ham3StructureMatchesFigure2) {
    const auto circ = ham3_ft();
    const lq::Qodg graph(circ);
    EXPECT_EQ(graph.num_ops(), 19u);        // 15 (Toffoli) + 4 trailing
    EXPECT_EQ(graph.num_nodes(), 21u);      // + start/end
    // Every op node lies between start and end.
    const auto lp = graph.longest_path(unit_delays(graph));
    EXPECT_GT(lp.length, 0.0);
    for (lq::NodeId id = 1; id + 1 < graph.num_nodes(); ++id) {
        EXPECT_EQ(graph.node(id).kind, lq::NodeKind::Op);
        EXPECT_FALSE(graph.successors(id).empty()) << "dangling op node " << id;
    }
}

TEST(Qodg, CensusCountsPerKind) {
    const auto circ = ham3_ft();
    const lq::Qodg graph(circ);
    const auto lp = graph.longest_path(unit_delays(graph));
    const auto path = graph.critical_path(lp);
    const auto census = graph.census(path);
    EXPECT_EQ(census.total_ops, path.size() - 2); // minus start/end
    std::size_t sum = 0;
    for (const auto n : census.by_kind) sum += n;
    EXPECT_EQ(sum, census.total_ops);
    // The toffoli-network target line is the longest chain; it is made of
    // CNOT/T/H ops only.
    EXPECT_GT(census.of(lc::GateKind::Cnot), 0u);
}

TEST(Qodg, CriticalPathDominatesEveryNodeDistance) {
    leqa::util::Rng rng(42);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 3 + rng.index(5);
        lc::Circuit circ(n);
        for (int g = 0; g < 60; ++g) {
            const auto picks = rng.sample_without_replacement(n, 2);
            if (rng.chance(0.5)) {
                circ.cnot(static_cast<lc::Qubit>(picks[0]), static_cast<lc::Qubit>(picks[1]));
            } else {
                circ.t(static_cast<lc::Qubit>(picks[0]));
            }
        }
        const lq::Qodg graph(circ);
        auto delays = graph.node_delays([&](lc::GateKind) { return 1.0; });
        // Randomize delays for a stronger property.
        for (auto& d : delays) d = 1.0 + rng.uniform() * 9.0;
        delays[graph.start()] = 0.0;
        delays[graph.end()] = 0.0;
        const auto lp = graph.longest_path(delays);
        for (lq::NodeId id = 0; id < graph.num_nodes(); ++id) {
            EXPECT_LE(lp.distance[id], lp.length + 1e-9);
        }
        // Path length equals the sum of delays along the extracted path.
        const auto path = graph.critical_path(lp);
        double sum = 0.0;
        for (const auto id : path) sum += delays[id];
        EXPECT_NEAR(sum, lp.length, 1e-9);
        // Successive path nodes are actual edges.
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            const auto& succ = graph.successors(path[i]);
            EXPECT_NE(std::find(succ.begin(), succ.end(), path[i + 1]), succ.end());
        }
    }
}

TEST(Qodg, NodeDelayVectorShape) {
    const auto circ = ham3_ft();
    const lq::Qodg graph(circ);
    const auto delays = graph.node_delays([](lc::GateKind kind) {
        return kind == lc::GateKind::Cnot ? 2.0 : 1.0;
    });
    ASSERT_EQ(delays.size(), graph.num_nodes());
    EXPECT_DOUBLE_EQ(delays[graph.start()], 0.0);
    EXPECT_DOUBLE_EQ(delays[graph.end()], 0.0);
    EXPECT_DOUBLE_EQ(delays[graph.node_of_gate(1)], 2.0); // first CNOT of the network
}

TEST(Qodg, DotExportMentionsNodes) {
    lc::Circuit circ(2);
    circ.h(0).cnot(0, 1);
    const lq::Qodg graph(circ);
    const std::string dot = graph.to_dot(circ);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("start"), std::string::npos);
    EXPECT_NE(dot.find("end"), std::string::npos);
    EXPECT_NE(dot.find("cnot"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Qodg, GateIndexMapping) {
    lc::Circuit circ(2);
    circ.h(0).cnot(0, 1).t(1);
    const lq::Qodg graph(circ);
    EXPECT_EQ(graph.node_of_gate(0), 1u);
    EXPECT_EQ(graph.node_of_gate(2), 3u);
    EXPECT_EQ(graph.node(graph.node_of_gate(1)).gate_kind, lc::GateKind::Cnot);
    EXPECT_THROW((void)graph.node_of_gate(3), leqa::util::Error);
}

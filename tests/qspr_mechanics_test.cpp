// White-box tests of the QSPR mapper mechanics: CNOT meeting points,
// control eviction, relocation of one-qubit ops, maze-vs-XY routing
// behaviour under congestion, and reservation pruning during long runs.
#include <gtest/gtest.h>

#include "fabric/geometry.h"
#include "qspr/channels.h"
#include "qspr/qspr.h"
#include "qspr/router.h"
#include "util/error.h"

namespace lc = leqa::circuit;
namespace lf = leqa::fabric;
namespace lq = leqa::qspr;

namespace {
lf::PhysicalParams params_for(int side) {
    lf::PhysicalParams params;
    params.width = side;
    params.height = side;
    return params;
}
} // namespace

TEST(QsprMechanics, CnotMeetsNearMidpointAndEvicts) {
    // Two qubits far apart on an otherwise empty fabric: the meeting ULB
    // must be near the midpoint, and the op start must cover at least half
    // the distance at one hop per Tmove.
    lc::Circuit circ(2);
    circ.cnot(0, 1);
    auto params = params_for(17);
    lq::QsprOptions options;
    options.placement = lq::PlacementStrategy::RowMajor; // q0 at (0,0), q1 at (1,0)
    options.collect_schedule = true;
    // Spread the two qubits: use a 2-qubit circuit where row-major puts
    // them adjacent; instead place on a 17-wide fabric and check distance
    // effects via a chain of ops below.  Here: adjacent case.
    const auto result = lq::QsprMapper(params, options).map(circ);
    ASSERT_EQ(result.schedule.size(), 1u);
    const auto& op = result.schedule[0];
    // Adjacent qubits: at most one hop each before starting.
    EXPECT_LE(op.start_us, 2 * params.t_move_us + 1e-9);
    EXPECT_DOUBLE_EQ(op.finish_us - op.start_us, params.d_cnot_us);
    // One of the qubits was evicted after the CNOT.
    EXPECT_GE(result.stats.evictions, 0u);
}

TEST(QsprMechanics, DistanceIncreasesRoutingTime) {
    // One CNOT between qubits placed k apart (via row-major placement and
    // spacer qubits that are never used).
    const auto latency_for_gap = [](std::size_t gap) {
        lc::Circuit circ(gap + 2);
        circ.cnot(0, static_cast<lc::Qubit>(gap + 1));
        lq::QsprOptions options;
        options.placement = lq::PlacementStrategy::RowMajor;
        const auto params = params_for(40);
        return lq::QsprMapper(params, options).map(circ).latency_us;
    };
    const double near = latency_for_gap(1);
    const double far = latency_for_gap(30);
    EXPECT_GT(far, near);
    // Roughly half the distance each, one hop per Tmove (quantized).
    EXPECT_GE(far - near, 10 * 100.0);
}

TEST(QsprMechanics, RelocationHappensWhenHomeIsBusy) {
    // q0 and q1 meet at a ULB for a long CNOT; a one-qubit op on the
    // resident of that ULB while it is busy must relocate.
    // Construct: cnot(0,1) then t(1) immediately -- but t(1) waits for the
    // qubit itself.  Instead: cnot(0,1); t on the qubit that stayed at the
    // meeting ULB is fine; the RELOCATION path triggers when a third
    // qubit's home is used as the meeting ULB.  Row-major places q0,q1,q2
    // adjacently; cnot(0,2) can meet at q1's home (midpoint) only if q1 is
    // elsewhere, so the meeting search skips occupied ULBs -- assert the
    // invariant instead: relocations counter is consistent and ops still
    // serialize correctly.
    lc::Circuit circ(3);
    circ.cnot(0, 2).t(1).cnot(0, 1).t(2);
    lq::QsprOptions options;
    options.placement = lq::PlacementStrategy::RowMajor;
    options.collect_schedule = true;
    const auto result = lq::QsprMapper(params_for(8), options).map(circ);
    ASSERT_EQ(result.schedule.size(), 4u);
    // The t(1) is independent of the cnot(0,2) and can run concurrently.
    EXPECT_LT(result.schedule[1].start_us, result.schedule[0].finish_us);
}

TEST(QsprMechanics, MazeRouterAvoidsCongestedCorridor) {
    // Jam the entire straight corridor from (0,1) to (3,1).  With Nc = 1,
    // each jammed hop costs 2x, so the straight path costs 6 hops-worth
    // while the clean detour through row 0 costs 5: the maze router must
    // take the detour, where XY routing would march through the jam.
    const lf::FabricGeometry geo(6, 3);
    lq::ChannelReservations channels(geo.num_segments(), 1, 100.0);
    std::vector<lf::SegmentId> jammed;
    for (int x = 0; x < 3; ++x) {
        jammed.push_back(geo.segment_between({x, 1}, {x + 1, 1}));
    }
    for (const auto segment : jammed) {
        for (int slot = 0; slot < 50; ++slot) {
            (void)channels.reserve(segment, slot * 100.0);
        }
    }
    const lq::MazeRouter router(geo, 3);
    const auto path = router.route({0, 1}, {3, 1}, 0.0, channels, 1, 100.0);
    EXPECT_EQ(path.size(), 5u); // up/down + 3 across a clean row
    for (const auto segment : path) {
        for (const auto bad : jammed) EXPECT_NE(segment, bad);
    }
    // Control: the same route on clean channels is the direct 3 hops.
    lq::ChannelReservations clean(geo.num_segments(), 1, 100.0);
    EXPECT_EQ(router.route({0, 1}, {3, 1}, 0.0, clean, 1, 100.0).size(), 3u);
}

TEST(QsprMechanics, MazeEqualsXyOnEmptyFabric) {
    const lf::FabricGeometry geo(10, 10);
    lq::ChannelReservations channels(geo.num_segments(), 5, 100.0);
    const lq::MazeRouter router(geo, 4);
    for (const auto& [from, to] :
         {std::pair{lf::UlbCoord{0, 0}, lf::UlbCoord{7, 4}},
          {lf::UlbCoord{9, 9}, lf::UlbCoord{2, 3}},
          {lf::UlbCoord{5, 5}, lf::UlbCoord{5, 5}}}) {
        const auto maze = router.route(from, to, 0.0, channels, 5, 100.0);
        EXPECT_EQ(maze.size(), static_cast<std::size_t>(geo.manhattan(from, to)));
    }
}

TEST(QsprMechanics, PruneDuringRunKeepsResultIdentical) {
    lc::Circuit circ(8);
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 4; ++i) {
            circ.cnot(static_cast<lc::Qubit>(i), static_cast<lc::Qubit>(7 - i));
        }
    }
    lq::QsprOptions frequent_prune;
    frequent_prune.prune_interval = 16;
    lq::QsprOptions no_prune;
    no_prune.prune_interval = 0;
    const auto params = params_for(10);
    const auto a = lq::QsprMapper(params, frequent_prune).map(circ);
    const auto b = lq::QsprMapper(params, no_prune).map(circ);
    // Pruning only discards *past* slots, so results must be identical.
    EXPECT_DOUBLE_EQ(a.latency_us, b.latency_us);
    EXPECT_EQ(a.stats.total_hops, b.stats.total_hops);
}

TEST(QsprMechanics, SaturatedFabricStillCompletes) {
    // Fabric exactly as large as the qubit count: evictions have nowhere
    // to go; the mapper must fall back gracefully and still finish.
    lc::Circuit circ(9);
    for (int i = 0; i < 8; ++i) {
        circ.cnot(static_cast<lc::Qubit>(i), static_cast<lc::Qubit>(i + 1));
    }
    const auto result = lq::QsprMapper(params_for(3)).map(circ);
    EXPECT_GT(result.latency_us, 0.0);
    EXPECT_EQ(result.stats.cnot_ops, 8u);
}

TEST(QsprMechanics, RouterMarginValidation) {
    const lf::FabricGeometry geo(5, 5);
    EXPECT_THROW(lq::MazeRouter(geo, -1), leqa::util::InputError);
    lq::ChannelReservations channels(geo.num_segments(), 1, 100.0);
    const lq::MazeRouter router(geo, 0);
    EXPECT_THROW((void)router.route({0, 0}, {1, 0}, 0.0, channels, 0, 100.0),
                 leqa::util::InputError);
}

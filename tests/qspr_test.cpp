// Tests for the QSPR baseline mapper: channel reservations honor Nc,
// placement strategies, schedule validity (dependencies respected), and
// determinism.
#include <gtest/gtest.h>

#include <set>

#include "qspr/channels.h"
#include "qspr/placement.h"
#include "qspr/qspr.h"
#include "synth/ft_synth.h"
#include "util/error.h"
#include "util/rng.h"

namespace lc = leqa::circuit;
namespace lf = leqa::fabric;
namespace lq = leqa::qspr;
using leqa::util::InputError;

namespace {

lf::PhysicalParams small_params(int width = 8, int height = 8) {
    lf::PhysicalParams params;
    params.width = width;
    params.height = height;
    return params;
}

} // namespace

// --------------------------------------------------------------- channels --

TEST(Channels, UncongestedPassesImmediately) {
    lq::ChannelReservations channels(4, 2, 100.0);
    EXPECT_DOUBLE_EQ(channels.reserve(0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(channels.reserve(0, 0.0), 0.0); // capacity 2
    EXPECT_DOUBLE_EQ(channels.reserve(1, 0.0), 0.0); // other segment independent
}

TEST(Channels, CapacityForcesNextSlot) {
    lq::ChannelReservations channels(1, 2, 100.0);
    EXPECT_DOUBLE_EQ(channels.reserve(0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(channels.reserve(0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(channels.reserve(0, 0.0), 100.0); // third waits a slot
    EXPECT_DOUBLE_EQ(channels.reserve(0, 0.0), 100.0);
    EXPECT_DOUBLE_EQ(channels.reserve(0, 0.0), 200.0);
    EXPECT_EQ(channels.stats().delayed_hops, 3u);
    EXPECT_EQ(channels.stats().max_occupancy, 2);
}

TEST(Channels, MidSlotArrivalRoundsUp) {
    lq::ChannelReservations channels(1, 1, 100.0);
    EXPECT_DOUBLE_EQ(channels.reserve(0, 50.0), 100.0);  // next boundary
    EXPECT_DOUBLE_EQ(channels.reserve(0, 100.0), 200.0); // slot 1 now full
}

TEST(Channels, RouteAccumulatesHops) {
    lq::ChannelReservations channels(3, 5, 100.0);
    const double arrival = channels.route({0, 1, 2}, 0.0);
    EXPECT_DOUBLE_EQ(arrival, 300.0);
    EXPECT_EQ(channels.stats().reservations, 3u);
}

TEST(Channels, RouteQueuesBehindTraffic) {
    lq::ChannelReservations channels(2, 1, 100.0);
    EXPECT_DOUBLE_EQ(channels.route({0, 1}, 0.0), 200.0);
    // Second qubit following the same path gets pipelined one slot behind.
    EXPECT_DOUBLE_EQ(channels.route({0, 1}, 0.0), 300.0);
}

TEST(Channels, PruneKeepsSemanticsForFutureReservations) {
    lq::ChannelReservations channels(1, 1, 100.0);
    (void)channels.reserve(0, 0.0);
    (void)channels.reserve(0, 100.0);
    EXPECT_EQ(channels.live_entries(), 2u);
    channels.prune_before(500.0);
    EXPECT_EQ(channels.live_entries(), 0u);
    // New reservation beyond the prune horizon is unaffected.
    EXPECT_DOUBLE_EQ(channels.reserve(0, 500.0), 500.0);
}

TEST(Channels, InvalidArguments) {
    lq::ChannelReservations channels(1, 1, 100.0);
    EXPECT_THROW((void)channels.reserve(5, 0.0), InputError);
    EXPECT_THROW((void)channels.reserve(0, -1.0), InputError);
    EXPECT_THROW(lq::ChannelReservations(1, 0, 100.0), InputError);
}

// -------------------------------------------------------------- placement --

TEST(Placement, StrategiesProduceDistinctHomes) {
    const lf::FabricGeometry geo(10, 10);
    for (const auto strategy :
         {lq::PlacementStrategy::CenteredBlock, lq::PlacementStrategy::RowMajor,
          lq::PlacementStrategy::Random}) {
        const auto homes = lq::initial_placement(geo, 37, strategy, 7);
        EXPECT_EQ(homes.size(), 37u);
        const std::set<lf::UlbId> unique(homes.begin(), homes.end());
        EXPECT_EQ(unique.size(), 37u) << lq::placement_strategy_name(strategy);
        for (const auto id : homes) {
            EXPECT_GE(id, 0);
            EXPECT_LT(static_cast<std::size_t>(id), geo.num_ulbs());
        }
    }
}

TEST(Placement, CenteredBlockIsCentered) {
    const lf::FabricGeometry geo(11, 11);
    const auto homes =
        lq::initial_placement(geo, 9, lq::PlacementStrategy::CenteredBlock, 1);
    // 9 qubits -> 3x3 block centered at (4..6, 4..6).
    for (const auto id : homes) {
        const auto c = geo.ulb_coord(id);
        EXPECT_GE(c.x, 4);
        EXPECT_LE(c.x, 6);
        EXPECT_GE(c.y, 4);
        EXPECT_LE(c.y, 6);
    }
}

TEST(Placement, RandomIsSeedDeterministic) {
    const lf::FabricGeometry geo(10, 10);
    const auto a = lq::initial_placement(geo, 20, lq::PlacementStrategy::Random, 5);
    const auto b = lq::initial_placement(geo, 20, lq::PlacementStrategy::Random, 5);
    const auto c = lq::initial_placement(geo, 20, lq::PlacementStrategy::Random, 6);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(Placement, FabricTooSmallThrows) {
    const lf::FabricGeometry geo(3, 3);
    EXPECT_THROW(
        (void)lq::initial_placement(geo, 10, lq::PlacementStrategy::RowMajor, 1),
        InputError);
}

TEST(Placement, StrategyNameRoundTrip) {
    for (const auto strategy :
         {lq::PlacementStrategy::CenteredBlock, lq::PlacementStrategy::RowMajor,
          lq::PlacementStrategy::Random}) {
        EXPECT_EQ(lq::parse_placement_strategy(lq::placement_strategy_name(strategy)),
                  strategy);
    }
    EXPECT_THROW((void)lq::parse_placement_strategy("bogus"), InputError);
}

// ------------------------------------------------------------------- qspr --

TEST(Qspr, RejectsNonFtCircuit) {
    lc::Circuit circ(3);
    circ.toffoli(0, 1, 2);
    const lq::QsprMapper mapper(small_params());
    EXPECT_THROW((void)mapper.map(circ), InputError);
}

TEST(Qspr, RejectsOversizedCircuit) {
    lc::Circuit circ(100);
    circ.h(0);
    const lq::QsprMapper mapper(small_params(3, 3));
    EXPECT_THROW((void)mapper.map(circ), InputError);
}

TEST(Qspr, EmptyCircuitHasZeroLatency) {
    const lc::Circuit circ(4);
    const lq::QsprMapper mapper(small_params());
    EXPECT_DOUBLE_EQ(mapper.map(circ).latency_us, 0.0);
}

TEST(Qspr, SingleGateLatencyIsGateDelay) {
    lc::Circuit circ(1);
    circ.h(0);
    const lq::QsprMapper mapper(small_params());
    const auto result = mapper.map(circ);
    EXPECT_DOUBLE_EQ(result.latency_us, 5440.0); // runs in place, no routing
    EXPECT_EQ(result.stats.one_qubit_ops, 1u);
}

TEST(Qspr, SequentialGatesAccumulate) {
    lc::Circuit circ(1);
    circ.h(0).t(0).h(0);
    const lq::QsprMapper mapper(small_params());
    EXPECT_DOUBLE_EQ(mapper.map(circ).latency_us, 5440.0 + 10940.0 + 5440.0);
}

TEST(Qspr, CnotIncludesTravelTime) {
    lc::Circuit circ(2);
    circ.cnot(0, 1);
    const auto params = small_params();
    const lq::QsprMapper mapper(params);
    const auto result = mapper.map(circ);
    // Both qubits sit adjacent in the centered block; they meet at the
    // midpoint, at least one travels >= 1 hop.
    EXPECT_GE(result.latency_us, params.d_cnot_us);
    EXPECT_LE(result.latency_us, params.d_cnot_us + 10 * params.t_move_us);
    EXPECT_EQ(result.stats.cnot_ops, 1u);
    EXPECT_GE(result.stats.total_hops, 1u);
}

TEST(Qspr, ScheduleRespectsDependencies) {
    lc::Circuit circ(4);
    leqa::util::Rng rng(3);
    for (int g = 0; g < 50; ++g) {
        const auto picks = rng.sample_without_replacement(4, 2);
        if (rng.chance(0.6)) {
            circ.cnot(static_cast<lc::Qubit>(picks[0]), static_cast<lc::Qubit>(picks[1]));
        } else {
            circ.t(static_cast<lc::Qubit>(picks[0]));
        }
    }
    lq::QsprOptions options;
    options.collect_schedule = true;
    const lq::QsprMapper mapper(small_params(12, 12), options);
    const auto result = mapper.map(circ);
    ASSERT_EQ(result.schedule.size(), circ.size());

    // Per-qubit program order must map to non-decreasing time intervals.
    std::vector<double> last_finish(4, 0.0);
    for (const auto& op : result.schedule) {
        const auto& gate = circ.gate(op.gate_index);
        EXPECT_LE(op.start_us + 1e-9, op.finish_us);
        for (const auto q : gate.qubits()) {
            EXPECT_GE(op.start_us + 1e-9, last_finish[q])
                << "gate " << op.gate_index << " starts before operand free";
        }
        for (const auto q : gate.qubits()) last_finish[q] = op.finish_us;
    }
    // Latency equals the max finish time.
    double makespan = 0.0;
    for (const auto& op : result.schedule) makespan = std::max(makespan, op.finish_us);
    EXPECT_DOUBLE_EQ(result.latency_us, makespan);
}

TEST(Qspr, DeterministicAcrossRuns) {
    lc::Circuit circ(6);
    leqa::util::Rng rng(8);
    for (int g = 0; g < 80; ++g) {
        const auto picks = rng.sample_without_replacement(6, 2);
        circ.cnot(static_cast<lc::Qubit>(picks[0]), static_cast<lc::Qubit>(picks[1]));
    }
    const lq::QsprMapper mapper(small_params());
    const auto a = mapper.map(circ);
    const auto b = mapper.map(circ);
    EXPECT_DOUBLE_EQ(a.latency_us, b.latency_us);
    EXPECT_EQ(a.stats.total_hops, b.stats.total_hops);
}

TEST(Qspr, LatencyAtLeastCriticalGateDelay) {
    // Routing can only add to the pure dependency-chain delay.
    lc::Circuit circ(2);
    circ.h(0).cnot(0, 1).t(1).cnot(0, 1).h(1);
    const auto params = small_params();
    const lq::QsprMapper mapper(params);
    const double floor_us = params.d_h_us + params.d_cnot_us + params.d_t_us +
                            params.d_cnot_us + params.d_h_us;
    EXPECT_GE(mapper.map(circ).latency_us, floor_us);
}

TEST(Qspr, CongestionIncreasesLatencyWhenNcDrops) {
    // Many disjoint CNOT pairs through a narrow fabric: tighter channel
    // capacity must not decrease the makespan.
    lc::Circuit circ(16);
    for (int round = 0; round < 4; ++round) {
        for (int i = 0; i < 8; ++i) {
            circ.cnot(static_cast<lc::Qubit>(i), static_cast<lc::Qubit>(15 - i));
        }
    }
    auto params_loose = small_params(16, 2);
    params_loose.nc = 8;
    auto params_tight = params_loose;
    params_tight.nc = 1;
    const auto loose = lq::QsprMapper(params_loose).map(circ);
    const auto tight = lq::QsprMapper(params_tight).map(circ);
    EXPECT_GE(tight.latency_us, loose.latency_us);
    EXPECT_GE(tight.stats.channels.delayed_hops, loose.stats.channels.delayed_hops);
}

TEST(Qspr, StatsToStringMentionsCounters) {
    lc::Circuit circ(2);
    circ.cnot(0, 1);
    const lq::QsprMapper mapper(small_params());
    const std::string text = mapper.map(circ).stats.to_string();
    EXPECT_NE(text.find("cnots: 1"), std::string::npos);
    EXPECT_NE(text.find("hops:"), std::string::npos);
}

TEST(Qspr, FtSynthesizedToffoliRunsEndToEnd) {
    lc::Circuit circ(3);
    circ.toffoli(0, 1, 2);
    const auto ft = leqa::synth::ft_synthesize(circ);
    const lq::QsprMapper mapper(small_params());
    const auto result = mapper.map(ft.circuit);
    EXPECT_GT(result.latency_us, 0.0);
    EXPECT_EQ(result.stats.cnot_ops, 6u);
    EXPECT_EQ(result.stats.one_qubit_ops, 9u);
}

// Tests for the JSON writer, the report module, and the sweep API.
#include <gtest/gtest.h>

#include "benchgen/suite.h"
#include "core/leqa.h"
#include "core/sweep.h"
#include "qspr/qspr.h"
#include "report/report.h"
#include "synth/ft_synth.h"
#include "util/error.h"
#include "util/json.h"

namespace lb = leqa::benchgen;
namespace lcore = leqa::core;
namespace lf = leqa::fabric;
namespace lq = leqa::qspr;
namespace lu = leqa::util;
using leqa::util::InternalError;

namespace {

/// Tiny structural validator: balanced braces/brackets outside strings and
/// balanced quotes (sufficient to catch emitter bugs without a parser).
bool json_balanced(const std::string& text) {
    int depth = 0;
    bool in_string = false;
    bool escaped = false;
    for (const char c : text) {
        if (in_string) {
            if (escaped) escaped = false;
            else if (c == '\\') escaped = true;
            else if (c == '"') in_string = false;
            continue;
        }
        switch (c) {
            case '"': in_string = true; break;
            case '{': case '[': ++depth; break;
            case '}': case ']': --depth; break;
            default: break;
        }
        if (depth < 0) return false;
    }
    return depth == 0 && !in_string;
}

} // namespace

// ------------------------------------------------------------ JsonWriter --

TEST(JsonWriter, BasicDocument) {
    lu::JsonWriter json;
    json.begin_object();
    json.kv("name", "leqa");
    json.kv("qubits", std::size_t{48});
    json.kv("latency", 1.5);
    json.kv("valid", true);
    json.key("tags").begin_array().value("a").value("b").end_array();
    json.key("nothing").null();
    json.end_object();
    const std::string text = json.str();
    EXPECT_EQ(text,
              "{\"name\":\"leqa\",\"qubits\":48,\"latency\":1.5,\"valid\":true,"
              "\"tags\":[\"a\",\"b\"],\"nothing\":null}");
    EXPECT_TRUE(json_balanced(text));
}

TEST(JsonWriter, EscapesSpecialCharacters) {
    EXPECT_EQ(lu::JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(lu::JsonWriter::escape(std::string("x\x01y")), "x\\u0001y");
    lu::JsonWriter json;
    json.begin_object().kv("gf2^16", "a\"quote").end_object();
    EXPECT_TRUE(json_balanced(json.str()));
}

TEST(JsonWriter, NestedContainers) {
    lu::JsonWriter json;
    json.begin_array();
    for (int i = 0; i < 3; ++i) {
        json.begin_object().kv("i", static_cast<long long>(i)).end_object();
    }
    json.end_array();
    EXPECT_EQ(json.str(), "[{\"i\":0},{\"i\":1},{\"i\":2}]");
}

TEST(JsonWriter, MisuseIsCaught) {
    {
        lu::JsonWriter json;
        json.begin_object();
        EXPECT_THROW(json.value(1.0), InternalError); // value without key
    }
    {
        lu::JsonWriter json;
        json.begin_array();
        EXPECT_THROW(json.key("k"), InternalError); // key in array
    }
    {
        lu::JsonWriter json;
        json.begin_object();
        EXPECT_THROW((void)json.str(), InternalError); // incomplete
    }
    {
        lu::JsonWriter json;
        json.begin_object().key("k");
        EXPECT_THROW(json.end_object(), InternalError); // dangling key
    }
}

// ---------------------------------------------------------------- report --

TEST(Report, EstimateJsonContainsModelFields) {
    const auto ft = leqa::synth::ft_synthesize(lb::ham3()).circuit;
    const lf::PhysicalParams params;
    const auto estimate = lcore::LeqaEstimator(params).estimate(ft);
    const std::string json = leqa::report::estimate_to_json(estimate, params, "ham3");
    EXPECT_TRUE(json_balanced(json));
    for (const char* field :
         {"\"tool\":\"leqa\"", "\"circuit\":\"ham3\"", "\"zone_area_b\"",
          "\"l_cnot_avg_us\"", "\"e_sq\"", "\"critical_path\"", "\"latency_us\"",
          "\"gate_delays_us\"", "\"cnot\""}) {
        EXPECT_NE(json.find(field), std::string::npos) << field;
    }
}

TEST(Report, QsprJsonContainsStats) {
    const auto ft = leqa::synth::ft_synthesize(lb::ham3()).circuit;
    const lf::PhysicalParams params;
    const auto result = lq::QsprMapper(params).map(ft);
    const std::string json = leqa::report::qspr_result_to_json(result, params, "ham3");
    EXPECT_TRUE(json_balanced(json));
    for (const char* field : {"\"tool\":\"qspr\"", "\"total_hops\"", "\"channels\"",
                              "\"latency_us\"", "\"delayed_hops\""}) {
        EXPECT_NE(json.find(field), std::string::npos) << field;
    }
}

TEST(Report, ScheduleCsvRoundTrip) {
    const auto ft = leqa::synth::ft_synthesize(lb::ham3()).circuit;
    lq::QsprOptions options;
    options.collect_schedule = true;
    const auto result = lq::QsprMapper(lf::PhysicalParams{}, options).map(ft);
    const std::string csv = leqa::report::schedule_to_csv(result, ft);
    // Header + one line per op.
    std::size_t lines = 0;
    for (const char c : csv) {
        if (c == '\n') ++lines;
    }
    EXPECT_EQ(lines, ft.size() + 1);
    EXPECT_NE(csv.find("gate_index,gate,start_us,finish_us,ulb"), std::string::npos);
    EXPECT_NE(csv.find("cnot"), std::string::npos);
}

TEST(Report, ScheduleCsvRequiresCollectedSchedule) {
    const auto ft = leqa::synth::ft_synthesize(lb::ham3()).circuit;
    const auto result = lq::QsprMapper(lf::PhysicalParams{}).map(ft);
    EXPECT_THROW((void)leqa::report::schedule_to_csv(result, ft),
                 leqa::util::InputError);
}

// ----------------------------------------------------------------- sweeps --

TEST(Sweep, FabricSidesFindsMinimumAndSkipsInfeasible) {
    const auto ft = lb::make_ft_benchmark("gf2^16mult").circuit; // 48 qubits
    const leqa::qodg::Qodg graph(ft);
    const leqa::iig::Iig iig(ft);
    const lf::PhysicalParams base;
    const auto result =
        lcore::sweep_fabric_sides(graph, iig, base, {2, 6, 10, 20, 40, 60});
    // side 2 and 6 cannot host 48 qubits -> skipped.
    EXPECT_EQ(result.points.size(), 4u);
    for (const auto& point : result.points) {
        EXPECT_GE(static_cast<std::size_t>(point.params.width) *
                      static_cast<std::size_t>(point.params.height),
                  48u);
        EXPECT_GE(point.estimate.latency_us, result.best().estimate.latency_us);
    }
}

TEST(Sweep, AllSidesInfeasibleThrows) {
    const auto ft = lb::make_ft_benchmark("gf2^16mult").circuit;
    const leqa::qodg::Qodg graph(ft);
    const leqa::iig::Iig iig(ft);
    EXPECT_THROW(
        (void)lcore::sweep_fabric_sides(graph, iig, lf::PhysicalParams{}, {2, 3}),
        leqa::util::InputError);
}

TEST(Sweep, ChannelCapacityMonotone) {
    const auto ft = lb::make_ft_benchmark("hwb15ps").circuit;
    const leqa::qodg::Qodg graph(ft);
    const leqa::iig::Iig iig(ft);
    const auto result = lcore::sweep_channel_capacity(graph, iig, lf::PhysicalParams{},
                                                      {1, 2, 5, 10});
    ASSERT_EQ(result.points.size(), 4u);
    for (std::size_t i = 0; i + 1 < result.points.size(); ++i) {
        EXPECT_GE(result.points[i].estimate.latency_us,
                  result.points[i + 1].estimate.latency_us - 1e-9);
    }
    // Best is the largest capacity (ties resolve to the first minimum).
    EXPECT_GE(result.points.back().params.nc, 5);
}

TEST(Sweep, SpeedMonotone) {
    const auto ft = lb::make_ft_benchmark("hwb15ps").circuit;
    const leqa::qodg::Qodg graph(ft);
    const leqa::iig::Iig iig(ft);
    const auto result = lcore::sweep_speed(graph, iig, lf::PhysicalParams{},
                                           {1e-4, 1e-3, 1e-2});
    ASSERT_EQ(result.points.size(), 3u);
    EXPECT_GT(result.points[0].estimate.latency_us,
              result.points[2].estimate.latency_us);
    EXPECT_EQ(result.best_index, 2u);
    EXPECT_THROW((void)lcore::sweep_speed(graph, iig, lf::PhysicalParams{}, {-1.0}),
                 leqa::util::InputError);
}

#!/usr/bin/env python3
"""NDJSON smoke test for leqa_server (used by CI's server-smoke job).

Four phases:
  1. stdio: pipes a seven-step script -- estimate, map, sweep, a bad
     source, a cancel, a design-space explore, then EOF -- into the daemon
     and validates every response (one per id, completion order free, the
     daemon drains on EOF and exits 0);
  2. TCP: starts the daemon with --listen 0, parses the announced
     ephemeral port, replays the same script over a real socket, validates
     the same responses, then SIGTERMs the server and expects exit 0;
  3. line cap: over TCP with --max-line 256, an overlong junk line must
     answer {"id":0,"error":{"code":"ParseError",...}} and the stream must
     resynchronize (the next well-formed request still works);
  4. signal drain (stdio): SIGTERM mid-job must still deliver the job's
     response and exit 0.

Usage: server_smoke.py path/to/leqa_server
"""
import json
import signal
import socket
import subprocess
import sys
import time

SERVER = sys.argv[1] if len(sys.argv) > 1 else "./build/leqa_server"

# Job 1 is big enough (~0.1 s) to pin the single worker while the reader
# ingests the rest of the script, so job 2 is still queued when the cancel
# for it arrives.
REQUESTS = [
    {"id": 1, "op": "estimate", "source": "bench:gf2^128mult"},
    {"id": 2, "op": "estimate", "source": "bench:hwb15ps"},
    {"id": 3, "op": "map", "source": "bench:ham3"},
    {"id": 4, "op": "sweep", "source": "bench:ham3", "axis": "fabric_sides",
     "values": [40, 50, 60]},
    {"id": 5, "op": "estimate", "source": "bench:nosuchbench"},
    {"id": 6, "op": "cancel", "target": 2},
    {"id": 7, "op": "explore", "source": "bench:ham3",
     "topologies": ["grid", "torus"], "sides": [8, 10], "nc": [3, 5],
     "threads": 2},
]

script = "".join(json.dumps(request) + "\n" for request in REQUESTS)


def index_responses(lines):
    responses = {}
    for line in lines:
        if not line.strip():
            continue
        response = json.loads(line)
        assert response["id"] not in responses, f"duplicate response id: {line}"
        responses[response["id"]] = response
    return responses


def validate(responses):
    assert set(responses) == {1, 2, 3, 4, 5, 6, 7}, sorted(responses)

    assert responses[1]["result"]["estimate"]["latency_us"] > 0.0
    assert responses[1]["result"]["mapping"] is None

    cancelled = responses[2]["error"]
    assert cancelled["code"] == "Cancelled", cancelled
    assert cancelled["origin"] == "queue", cancelled

    assert responses[3]["result"]["mapping"]["latency_us"] > 0.0
    assert responses[3]["result"]["estimate"] is None

    sweep = responses[4]["result"]["sweep"]
    assert len(sweep["points"]) == 3, sweep
    assert all(point["latency_us"] > 0.0 for point in sweep["points"])

    not_found = responses[5]["error"]
    assert not_found["code"] == "NotFound", not_found
    assert "nosuchbench" in not_found["message"], not_found

    ack = responses[6]["result"]
    assert ack == {"target": 2, "cancelled": True}, ack

    exploration = responses[7]["result"]["exploration"]
    assert exploration["points_total"] == 8, exploration["points_total"]
    assert len(exploration["points"]) == 8
    assert all(point["latency_us"] > 0.0 for point in exploration["points"])
    assert 0 <= exploration["best_index"] < 8
    assert {entry["topology"] for entry in exploration["best_per_topology"]} == \
        {"grid", "torus"}
    assert len(exploration["pareto_front"]) >= 1
    best = exploration["points"][exploration["best_index"]]["latency_us"]
    assert all(entry["latency_us"] >= best
               for entry in exploration["pareto_front"])


def spawn_tcp(*extra_args):
    """Start the daemon on an ephemeral port; return (process, port)."""
    proc = subprocess.Popen([SERVER, "--threads", "1", "--listen", "0",
                             *extra_args],
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)
    banner = proc.stdout.readline()
    assert banner.startswith("listening on 127.0.0.1:"), banner
    return proc, int(banner.rsplit(":", 1)[1])


def stop_and_expect_clean_exit(proc):
    proc.send_signal(signal.SIGTERM)
    _, stderr = proc.communicate(timeout=300)
    assert proc.returncode == 0, f"exit {proc.returncode}: {stderr}"


# --- phase 1: stdio -------------------------------------------------------
proc = subprocess.run([SERVER, "--threads", "1"], input=script,
                      capture_output=True, text=True, timeout=300)
assert proc.returncode == 0, f"exit {proc.returncode}: {proc.stderr}"
stdio_responses = index_responses(proc.stdout.splitlines())
validate(stdio_responses)

# --- phase 2: the same script over TCP ------------------------------------
proc, port = spawn_tcp()
with socket.create_connection(("127.0.0.1", port), timeout=300) as conn:
    conn.sendall(script.encode())
    conn.shutdown(socket.SHUT_WR)  # half-close: server drains, then closes
    stream = conn.makefile("r")
    tcp_responses = index_responses(stream.readlines())  # until server EOF
validate(tcp_responses)
stop_and_expect_clean_exit(proc)

# --- phase 3: line cap + resynchronization over TCP -----------------------
proc, port = spawn_tcp("--max-line", "256")
with socket.create_connection(("127.0.0.1", port), timeout=300) as conn:
    conn.sendall(b"x" * 4096 + b"\n")
    conn.sendall(json.dumps(
        {"id": 9, "op": "estimate", "source": "bench:ham3"}).encode() + b"\n")
    conn.shutdown(socket.SHUT_WR)
    lines = conn.makefile("r").readlines()
capped = index_responses(lines)
assert set(capped) == {0, 9}, sorted(capped)
assert capped[0]["error"]["code"] == "ParseError", capped[0]
assert capped[9]["result"]["estimate"]["latency_us"] > 0.0
stop_and_expect_clean_exit(proc)

# --- phase 4: SIGTERM mid-job drains stdio --------------------------------
proc = subprocess.Popen([SERVER, "--threads", "1"], stdin=subprocess.PIPE,
                        stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                        text=True)
proc.stdin.write(json.dumps(
    {"id": 1, "op": "estimate", "source": "bench:gf2^128mult"}) + "\n")
proc.stdin.flush()
time.sleep(0.5)  # let the request reach the queue before the signal
proc.send_signal(signal.SIGTERM)
stdout, stderr = proc.communicate(timeout=300)
assert proc.returncode == 0, f"exit {proc.returncode}: {stderr}"
drained = index_responses(stdout.splitlines())
assert set(drained) == {1}, sorted(drained)
assert drained[1]["result"]["estimate"]["latency_us"] > 0.0

print("server smoke OK: stdio", len(stdio_responses), "responses, tcp",
      len(tcp_responses), "responses, line cap + signal drain clean")

#!/usr/bin/env python3
"""NDJSON smoke test for leqa_server (used by CI's server-smoke job).

Pipes a seven-step script -- estimate, map, sweep, a bad source, a cancel,
a design-space explore, then EOF -- into the daemon and validates:
  * every request id gets exactly one response (completion order is free);
  * the bad source comes back as {"error":{"code":"NotFound",...}};
  * the cancelled queued job comes back as code Cancelled and its cancel
    request is acked with {"cancelled":true};
  * successful responses carry the expected payloads;
  * the daemon drains on EOF and exits 0.

Usage: server_smoke.py path/to/leqa_server
"""
import json
import subprocess
import sys

SERVER = sys.argv[1] if len(sys.argv) > 1 else "./build/leqa_server"

# Job 1 is big enough (~0.1 s) to pin the single worker while the reader
# ingests the rest of the script, so job 2 is still queued when the cancel
# for it arrives.
REQUESTS = [
    {"id": 1, "op": "estimate", "source": "bench:gf2^128mult"},
    {"id": 2, "op": "estimate", "source": "bench:hwb15ps"},
    {"id": 3, "op": "map", "source": "bench:ham3"},
    {"id": 4, "op": "sweep", "source": "bench:ham3", "axis": "fabric_sides",
     "values": [40, 50, 60]},
    {"id": 5, "op": "estimate", "source": "bench:nosuchbench"},
    {"id": 6, "op": "cancel", "target": 2},
    {"id": 7, "op": "explore", "source": "bench:ham3",
     "topologies": ["grid", "torus"], "sides": [8, 10], "nc": [3, 5],
     "threads": 2},
]

script = "".join(json.dumps(request) + "\n" for request in REQUESTS)
proc = subprocess.run([SERVER, "--threads", "1"], input=script,
                      capture_output=True, text=True, timeout=300)
assert proc.returncode == 0, f"exit {proc.returncode}: {proc.stderr}"

responses = {}
for line in proc.stdout.splitlines():
    response = json.loads(line)
    assert response["id"] not in responses, f"duplicate response id: {line}"
    responses[response["id"]] = response

assert set(responses) == {1, 2, 3, 4, 5, 6, 7}, sorted(responses)

assert responses[1]["result"]["estimate"]["latency_us"] > 0.0
assert responses[1]["result"]["mapping"] is None

cancelled = responses[2]["error"]
assert cancelled["code"] == "Cancelled", cancelled
assert cancelled["origin"] == "queue", cancelled

assert responses[3]["result"]["mapping"]["latency_us"] > 0.0
assert responses[3]["result"]["estimate"] is None

sweep = responses[4]["result"]["sweep"]
assert len(sweep["points"]) == 3, sweep
assert all(point["latency_us"] > 0.0 for point in sweep["points"])

not_found = responses[5]["error"]
assert not_found["code"] == "NotFound", not_found
assert "nosuchbench" in not_found["message"], not_found

ack = responses[6]["result"]
assert ack == {"target": 2, "cancelled": True}, ack

exploration = responses[7]["result"]["exploration"]
assert exploration["points_total"] == 8, exploration["points_total"]
assert len(exploration["points"]) == 8
assert all(point["latency_us"] > 0.0 for point in exploration["points"])
assert 0 <= exploration["best_index"] < 8
assert {entry["topology"] for entry in exploration["best_per_topology"]} == \
    {"grid", "torus"}
assert len(exploration["pareto_front"]) >= 1
best = exploration["points"][exploration["best_index"]]["latency_us"]
assert all(entry["latency_us"] >= best for entry in exploration["pareto_front"])

print("server smoke OK:", {k: ("error" if "error" in v else "result")
                           for k, v in sorted(responses.items())})

// Tests for the async service boundary: submit/wait/poll/cancel semantics,
// priorities, deadlines, the no-exception-escapes guarantee, drain/shutdown
// lifecycle, stats, and bit-identical agreement with direct Pipeline::run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "service/service.h"
#include "util/error.h"

namespace ls = leqa::service;
namespace lp = leqa::pipeline;
namespace lu = leqa::util;

namespace {

/// A job body that parks its worker until release() is called; used to pin
/// the (single-threaded) service so later submissions stay queued.
class Blocker {
public:
    [[nodiscard]] ls::JobFn job() {
        return [this](lp::Pipeline&, const lp::RunControl&) -> ls::JobResult {
            started_.set_value();
            release_future_.wait();
            return lu::Status(lu::StatusCode::Internal, "blocker never succeeds");
        };
    }
    void wait_until_running() { started_.get_future().wait(); }
    void release() { release_.set_value(); }

private:
    std::promise<void> started_;
    std::promise<void> release_;
    std::shared_future<void> release_future_{release_.get_future().share()};
};

const lp::EstimationResult& run_output(const ls::JobResult& result) {
    return std::get<lp::EstimationResult>(result.value());
}

ls::ServiceOptions with_threads(std::size_t threads) {
    ls::ServiceOptions options;
    options.threads = threads;
    return options;
}

ls::SubmitOptions with_priority(int priority) {
    ls::SubmitOptions options;
    options.priority = priority;
    return options;
}

ls::SubmitOptions with_deadline(double seconds) {
    ls::SubmitOptions options;
    options.deadline_s = seconds;
    return options;
}

} // namespace

// ---------------------------------------------------------------- basics --

TEST(Service, SubmitWaitMatchesDirectPipelineRun) {
    lp::Pipeline direct;
    lp::EstimationRequest request(lp::CircuitSource::from_bench("ham3"));
    const lp::EstimationResult expected = direct.run(request);

    ls::Service service(lp::PipelineConfig{}, with_threads(2));
    const ls::JobHandle handle = service.submit(request);
    const ls::JobResult& result = handle.wait();
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    const lp::EstimationResult& got = run_output(result);

    // Bit-identical estimates: the service adds scheduling, not arithmetic.
    ASSERT_TRUE(got.estimate.has_value());
    EXPECT_EQ(got.estimate->latency_us, expected.estimate->latency_us);
    EXPECT_EQ(got.estimate->zone_area_b, expected.estimate->zone_area_b);
    EXPECT_EQ(got.estimate->e_sq, expected.estimate->e_sq);
    EXPECT_EQ(got.circuit.ft_ops, expected.circuit.ft_ops);
    EXPECT_EQ(handle.poll(), ls::JobState::Done);
}

TEST(Service, ManyConcurrentJobsAllComplete) {
    ls::Service service(lp::PipelineConfig{}, with_threads(4));
    std::vector<ls::JobHandle> handles;
    for (int i = 0; i < 16; ++i) {
        lp::EstimationRequest request(lp::CircuitSource::from_bench(
            i % 2 == 0 ? "ham3" : "8bitadder"));
        handles.push_back(service.submit(std::move(request)));
    }
    for (const ls::JobHandle& handle : handles) {
        EXPECT_TRUE(handle.wait().ok());
    }
    const ls::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.submitted, 16u);
    EXPECT_EQ(stats.completed, 16u);
    EXPECT_EQ(stats.succeeded, 16u);
    // Two distinct circuits, built once each, whatever the interleaving.
    EXPECT_EQ(stats.cache.circuit_misses, 2u);
}

TEST(Service, PriorityOrdersQueuedJobs) {
    Blocker blocker;
    ls::Service service(lp::PipelineConfig{}, with_threads(1));
    const ls::JobHandle gate = service.submit_fn(blocker.job());
    blocker.wait_until_running();

    // Queued while the only worker is pinned: the high-priority job must
    // run first even though it was submitted last.
    std::vector<int> order;
    std::mutex order_mutex;
    const auto record = [&](int tag) {
        return [&order, &order_mutex, tag](lp::Pipeline&,
                                           const lp::RunControl&) -> ls::JobResult {
            const std::lock_guard<std::mutex> lock(order_mutex);
            order.push_back(tag);
            return ls::JobOutput{leqa::core::CalibrationResult{}};
        };
    };
    const ls::JobHandle low = service.submit_fn(record(0), with_priority(0));
    const ls::JobHandle mid = service.submit_fn(record(1), with_priority(1));
    const ls::JobHandle high = service.submit_fn(record(2), with_priority(7));
    blocker.release();
    (void)low.wait();
    (void)mid.wait();
    (void)high.wait();
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 2);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 0);
    EXPECT_FALSE(gate.wait().ok()); // the blocker's Internal status
}

// ---------------------------------------------------------------- cancel --

TEST(Service, CancelledQueuedJobNeverExecutes) {
    Blocker blocker;
    ls::Service service(lp::PipelineConfig{}, with_threads(1));
    const ls::JobHandle gate = service.submit_fn(blocker.job());
    blocker.wait_until_running();

    // Queue a job for a circuit nothing else uses, cancel it while queued:
    // the pipeline cache must never see that circuit (the "never executes"
    // guarantee, observable via the cache-stats delta).
    const lp::CacheStats before = service.pipeline().cache_stats();
    ls::JobHandle doomed =
        service.submit(lp::EstimationRequest(lp::CircuitSource::from_bench("hwb15ps")));
    EXPECT_EQ(doomed.poll(), ls::JobState::Queued);
    EXPECT_TRUE(doomed.cancel());
    EXPECT_EQ(doomed.poll(), ls::JobState::Cancelled);
    const ls::JobResult& result = doomed.wait();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), lu::StatusCode::Cancelled);
    EXPECT_EQ(result.status().origin(), "queue");

    blocker.release();
    (void)gate.wait();
    service.drain();
    const lp::CacheStats after = service.pipeline().cache_stats();
    EXPECT_EQ(after.circuit_misses, before.circuit_misses); // never resolved
    EXPECT_EQ(service.stats().cancelled, 1u);

    // Cancelling a finished job is a no-op.
    EXPECT_FALSE(doomed.cancel());
}

TEST(Service, CancelRunningJobStopsAtNextCheckpoint) {
    Blocker blocker;
    ls::Service service(lp::PipelineConfig{}, with_threads(1));
    const ls::JobHandle gate = service.submit_fn(blocker.job());
    blocker.wait_until_running();

    // A running job observes the cooperative flag at the next pipeline
    // stage checkpoint.  Set the flag while the job is still queued-behind
    // the blocker via a pre-cancelled control: cancel() on the queued job
    // transitions it immediately, so instead submit, let it start, and
    // cancel mid-run is impossible to schedule deterministically here --
    // what we can pin down is the checkpoint itself:
    lp::Pipeline pipe;
    lp::RunControl control;
    control.cancel.store(true);
    const auto result = pipe.run_result(
        lp::EstimationRequest(lp::CircuitSource::from_bench("ham3")), &control);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), lu::StatusCode::Cancelled);
    EXPECT_EQ(result.status().origin(), "resolve"); // first checkpoint
    EXPECT_EQ(pipe.cache_stats().circuit_misses, 0u); // stopped before work

    blocker.release();
    (void)gate.wait();
}

// -------------------------------------------------------------- deadline --

TEST(Service, DeadlineExpiredInQueueNeverExecutes) {
    Blocker blocker;
    ls::Service service(lp::PipelineConfig{}, with_threads(1));
    const ls::JobHandle gate = service.submit_fn(blocker.job());
    blocker.wait_until_running();

    const lp::CacheStats before = service.pipeline().cache_stats();
    const ls::JobHandle late = service.submit(
        lp::EstimationRequest(lp::CircuitSource::from_bench("hwb15ps")),
        with_deadline(1e-4));
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    blocker.release();
    (void)gate.wait();

    const ls::JobResult& result = late.wait();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), lu::StatusCode::DeadlineExceeded);
    EXPECT_EQ(service.pipeline().cache_stats().circuit_misses, before.circuit_misses);
    EXPECT_EQ(service.stats().deadline_expired, 1u);
}

TEST(Service, HugeDeadlineMeansNoDeadlineNotInstantExpiry) {
    // A deadline past the steady_clock range used to wrap negative in the
    // double -> ns conversion and expire the job before it ran.
    ls::Service service(lp::PipelineConfig{}, with_threads(1));
    const ls::JobHandle job = service.submit(
        lp::EstimationRequest(lp::CircuitSource::from_bench("ham3")),
        with_deadline(1e10));
    const ls::JobResult& result = job.wait();
    ASSERT_TRUE(result.ok()) << result.status().to_string();
}

// ---------------------------------------------- the no-throw boundary ----

TEST(Service, FailuresSurfaceAsStatusNotExceptions) {
    ls::Service service(lp::PipelineConfig{}, with_threads(2));

    // Unknown bench -> NotFound (spec parsed inside the job).
    const auto not_found =
        service.submit("bench:nosuchbench", lp::RunMode::Estimate).wait();
    ASSERT_FALSE(not_found.ok());
    EXPECT_EQ(not_found.status().code(), lu::StatusCode::NotFound);
    EXPECT_EQ(not_found.status().origin(), "resolve");

    // Missing file -> NotFound.
    const auto missing =
        service.submit("/nonexistent/leqa/x.qasm", lp::RunMode::Estimate).wait();
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.status().code(), lu::StatusCode::NotFound);

    // Invalid parameter override -> InvalidArgument from the config stage.
    leqa::fabric::PhysicalParams bad;
    bad.width = -4;
    const auto invalid =
        service.submit("bench:ham3", lp::RunMode::Estimate, bad).wait();
    ASSERT_FALSE(invalid.ok());
    EXPECT_EQ(invalid.status().code(), lu::StatusCode::InvalidArgument);
    EXPECT_EQ(invalid.status().origin(), "config");

    // A job body that throws arbitrary exceptions -> Internal, not a crash.
    const auto internal =
        service
            .submit_fn([](lp::Pipeline&, const lp::RunControl&) -> ls::JobResult {
                throw std::runtime_error("job bug");
            })
            .wait();
    ASSERT_FALSE(internal.ok());
    EXPECT_EQ(internal.status().code(), lu::StatusCode::Internal);
    EXPECT_EQ(internal.status().origin(), "job");

    const ls::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 4u);
    EXPECT_EQ(stats.failed, 4u);
}

TEST(Service, ParseFailureSurfacesAsParseError) {
    // A syntactically broken netlist file maps to ParseError (not the
    // generic InvalidArgument): the boundary keeps the taxonomy.
    const std::string path = ::testing::TempDir() + "leqa_service_broken.qasm";
    {
        std::FILE* out = std::fopen(path.c_str(), "w");
        ASSERT_NE(out, nullptr);
        std::fputs("OPENQASM 2.0;\nqreg q[2];\nbogusgate q[0];\n", out);
        std::fclose(out);
    }
    ls::Service service(lp::PipelineConfig{}, with_threads(1));
    const auto result = service.submit(path, lp::RunMode::Estimate).wait();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), lu::StatusCode::ParseError);
    std::remove(path.c_str());
}

// ------------------------------------------------------- sweep/calibrate --

TEST(Service, SweepJobMatchesPipelineSweep) {
    ls::Service service(lp::PipelineConfig{}, with_threads(1));
    ls::SweepRequest request;
    request.source = "bench:ham3";
    request.axis = ls::SweepAxis::FabricSides;
    request.values = {40, 60};
    const ls::JobResult& result = service.submit_sweep(request).wait();
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    const auto& sweep = std::get<leqa::core::SweepResult>(result.value());
    ASSERT_EQ(sweep.points.size(), 2u);

    lp::Pipeline direct;
    const auto expected =
        direct.sweep_fabric_sides(lp::CircuitSource::from_bench("ham3"), {40, 60});
    for (std::size_t i = 0; i < sweep.points.size(); ++i) {
        EXPECT_EQ(sweep.points[i].estimate.latency_us,
                  expected.points[i].estimate.latency_us);
    }

    // Fractional sides are an InvalidArgument, not a crash.
    request.values = {40.5};
    const ls::JobResult& bad = service.submit_sweep(request).wait();
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.status().code(), lu::StatusCode::InvalidArgument);
}

TEST(Service, CalibrationJobFitsAndApplies) {
    ls::Service service(lp::PipelineConfig{}, with_threads(1));
    ls::CalibrationRequest request;
    request.sources = {"bench:ham3"};
    request.apply = true;
    const ls::JobResult& result = service.submit_calibration(request).wait();
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    const auto& fit = std::get<leqa::core::CalibrationResult>(result.value());
    EXPECT_GT(fit.v, 0.0);
    EXPECT_DOUBLE_EQ(service.pipeline().config().params.v, fit.v);
}

// ------------------------------------------------------------- lifecycle --

TEST(Service, DrainWaitsForAllAndShutdownRejectsLateWork) {
    ls::Service service(lp::PipelineConfig{}, with_threads(2));
    std::vector<ls::JobHandle> handles;
    for (int i = 0; i < 6; ++i) {
        handles.push_back(
            service.submit(lp::EstimationRequest(lp::CircuitSource::from_bench("ham3"))));
    }
    service.drain();
    for (const ls::JobHandle& handle : handles) {
        EXPECT_NE(handle.poll(), ls::JobState::Queued);
        EXPECT_NE(handle.poll(), ls::JobState::Running);
    }

    service.shutdown();
    service.shutdown(); // idempotent
    const ls::JobHandle late =
        service.submit(lp::EstimationRequest(lp::CircuitSource::from_bench("ham3")));
    const ls::JobResult& result = late.wait();
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), lu::StatusCode::Cancelled);
}

TEST(Service, OnCompleteFiresForEveryOutcomeBeforeDrainReturns) {
    std::atomic<int> completions{0};
    ls::Service service(lp::PipelineConfig{}, with_threads(2));
    ls::SubmitOptions options;
    options.on_complete = [&completions](const ls::JobHandle& handle) {
        (void)handle.wait(); // result is already set when the callback fires
        ++completions;
    };
    (void)service.submit(lp::EstimationRequest(lp::CircuitSource::from_bench("ham3")),
                         options);
    (void)service.submit("bench:nosuchbench", lp::RunMode::Estimate, {}, options);
    service.drain();
    EXPECT_EQ(completions.load(), 2);
}

TEST(Service, StatsTrackLatencyPercentiles) {
    ls::Service service(lp::PipelineConfig{}, with_threads(1));
    for (int i = 0; i < 8; ++i) {
        (void)service.submit(
            lp::EstimationRequest(lp::CircuitSource::from_bench("ham3")));
    }
    service.drain();
    const ls::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.service_time.count, 8u);
    EXPECT_GT(stats.service_time.p50_s, 0.0);
    EXPECT_GE(stats.service_time.p99_s, stats.service_time.p50_s);
    EXPECT_GE(stats.service_time.p999_s, stats.service_time.p99_s);
    EXPECT_GE(stats.service_time.max_s, stats.service_time.p999_s);
    // 8 samples cannot resolve a 99.9th percentile: nearest-rank saturates
    // it to the window maximum until the ring holds >= 1000.
    EXPECT_EQ(stats.service_time.p999_s, stats.service_time.max_s);
    EXPECT_GE(stats.queue_wait.p50_s, 0.0);
    EXPECT_FALSE(stats.to_string().empty());
    EXPECT_EQ(stats.queue_depth, 0u);
    EXPECT_EQ(stats.running, 0u);
}

TEST(Service, StatsSnapshotsStayConsistentDuringSubmitStorm) {
    // stats() copies the counters in one critical section, so a reader
    // hammering it during a submit storm must only ever observe internally
    // consistent values: monotone submitted/completed, completed never
    // ahead of submitted, and the per-outcome counters summing exactly to
    // completed (they are incremented together under the core mutex).
    // Under TSan (the CI tsan job runs this suite) this is the data-race
    // regression test for the ServiceStats snapshot path.
    ls::Service service(lp::PipelineConfig{}, with_threads(4));

    std::atomic<bool> done{false};
    std::atomic<int> violations{0};
    std::thread reader([&] {
        std::size_t last_submitted = 0;
        std::size_t last_completed = 0;
        while (!done.load()) {
            const ls::ServiceStats snap = service.stats();
            if (snap.submitted < last_submitted) ++violations;
            if (snap.completed < last_completed) ++violations;
            if (snap.completed > snap.submitted) ++violations;
            const std::size_t settled = snap.succeeded + snap.cancelled +
                                        snap.deadline_expired + snap.rejected +
                                        snap.failed;
            if (settled != snap.completed) ++violations;
            last_submitted = snap.submitted;
            last_completed = snap.completed;
        }
    });

    constexpr std::size_t kJobs = 200;
    std::vector<ls::JobHandle> handles;
    handles.reserve(kJobs);
    for (std::size_t i = 0; i < kJobs; ++i) {
        handles.push_back(service.submit_fn(
            [](lp::Pipeline&, const lp::RunControl&) -> ls::JobResult {
                return ls::JobOutput{leqa::core::CalibrationResult{}};
            }));
    }
    for (const ls::JobHandle& handle : handles) (void)handle.wait();
    service.drain();
    done.store(true);
    reader.join();

    EXPECT_EQ(violations.load(), 0);
    const ls::ServiceStats final_stats = service.stats();
    EXPECT_EQ(final_stats.submitted, kJobs);
    EXPECT_EQ(final_stats.completed, kJobs);
    EXPECT_EQ(final_stats.succeeded, kJobs);
    EXPECT_EQ(final_stats.queue_depth, 0u);
    EXPECT_EQ(final_stats.running, 0u);
}

TEST(Service, NowaitSubmitRejectsWithUnavailableWhenQueueIsFull) {
    ls::ServiceOptions service_options = with_threads(1);
    service_options.max_queue = 2;
    ls::Service service(lp::PipelineConfig{}, service_options);

    Blocker blocker;
    const ls::JobHandle gate = service.submit_fn(blocker.job());
    blocker.wait_until_running(); // the lone worker is pinned

    // The accepted jobs report NotFound when they actually run -- a marker
    // distinguishable from the Unavailable a rejection carries.
    const auto ran_marker = [](lp::Pipeline&, const lp::RunControl&) -> ls::JobResult {
        return lu::Status(lu::StatusCode::NotFound, "ran");
    };
    ls::SubmitOptions nowait;
    nowait.nowait = true;
    const ls::JobHandle first = service.submit_fn(ran_marker, nowait);
    const ls::JobHandle second = service.submit_fn(ran_marker, nowait);
    // The queue now holds max_queue jobs: a nowait submit must complete
    // immediately (no blocking) with the retryable rejection.
    const ls::JobHandle rejected = service.submit_fn(ran_marker, nowait);
    EXPECT_EQ(rejected.poll(), ls::JobState::Done);
    const ls::JobResult& result = rejected.wait();
    EXPECT_EQ(result.status().code(), lu::StatusCode::Unavailable);
    EXPECT_TRUE(lu::status_code_retryable(result.status().code()));

    blocker.release();
    EXPECT_EQ(first.wait().status().code(), lu::StatusCode::NotFound);
    EXPECT_EQ(second.wait().status().code(), lu::StatusCode::NotFound);
    const ls::ServiceStats stats = service.stats();
    EXPECT_EQ(stats.rejected, 1u);
    // A rejection still counts as completed, so drain accounting holds.
    EXPECT_EQ(stats.submitted, 4u);
    service.drain();
}

// Unit tests for the simulators: classical reversible bit-sim and the dense
// statevector verifier.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "sim/classical.h"
#include "sim/statevector.h"
#include "util/error.h"
#include "util/rng.h"

namespace lc = leqa::circuit;
namespace ls = leqa::sim;

// -------------------------------------------------------------- classical --

TEST(BasisState, IntegerRoundTrip) {
    auto state = ls::BasisState::from_integer(8, 0b10110010);
    EXPECT_EQ(state.to_integer(), 0b10110010u);
    EXPECT_TRUE(state.get(1));
    EXPECT_FALSE(state.get(0));
    state.flip(0);
    EXPECT_EQ(state.to_integer(), 0b10110011u);
}

TEST(BasisState, SliceAccess) {
    ls::BasisState state(12);
    state.set_slice(4, 4, 0b1010);
    EXPECT_EQ(state.slice(4, 4), 0b1010u);
    EXPECT_EQ(state.slice(0, 4), 0u);
    EXPECT_EQ(state.to_integer(), 0b1010u << 4);
    EXPECT_THROW((void)state.slice(10, 4), leqa::util::InputError);
    EXPECT_THROW(state.set_slice(0, 2, 5), leqa::util::InputError);
}

TEST(BasisState, ToStringQubitZeroFirst) {
    const auto state = ls::BasisState::from_integer(4, 0b0001);
    EXPECT_EQ(state.to_string(), "1000");
}

TEST(ClassicalSim, GateSemantics) {
    // X
    EXPECT_EQ(ls::run_classical(lc::Circuit(1).x(0), 0b0u), 0b1u);
    // CNOT fires only when control set.
    lc::Circuit cnot(2);
    cnot.cnot(0, 1);
    EXPECT_EQ(ls::run_classical(cnot, 0b00u), 0b00u);
    EXPECT_EQ(ls::run_classical(cnot, 0b01u), 0b11u);
    EXPECT_EQ(ls::run_classical(cnot, 0b10u), 0b10u);
    // Toffoli fires only when both controls set.
    lc::Circuit tof(3);
    tof.toffoli(0, 1, 2);
    EXPECT_EQ(ls::run_classical(tof, 0b011u), 0b111u);
    EXPECT_EQ(ls::run_classical(tof, 0b001u), 0b001u);
    // Fredkin swaps targets when control set.
    lc::Circuit fred(3);
    fred.fredkin(0, 1, 2);
    EXPECT_EQ(ls::run_classical(fred, 0b011u), 0b101u);
    EXPECT_EQ(ls::run_classical(fred, 0b010u), 0b010u);
    // SWAP always swaps.
    lc::Circuit swp(2);
    swp.swap(0, 1);
    EXPECT_EQ(ls::run_classical(swp, 0b01u), 0b10u);
}

TEST(ClassicalSim, MultiControlled) {
    lc::Circuit circ(5);
    circ.add_gate(lc::make_mcx({0, 1, 2, 3}, 4));
    EXPECT_EQ(ls::run_classical(circ, 0b01111u), 0b11111u);
    EXPECT_EQ(ls::run_classical(circ, 0b00111u), 0b00111u);
}

TEST(ClassicalSim, RejectsNonClassicalGate) {
    lc::Circuit circ(1);
    circ.h(0);
    ls::BasisState state(1);
    EXPECT_THROW(ls::run_classical(circ, state), leqa::util::InputError);
}

TEST(ClassicalSim, CircuitsArePermutations) {
    // Property: every classical reversible circuit permutes basis states.
    leqa::util::Rng rng(77);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 4 + rng.index(3);
        lc::Circuit circ(n);
        for (int g = 0; g < 30; ++g) {
            const auto picks = rng.sample_without_replacement(n, 3);
            switch (rng.index(4)) {
                case 0: circ.x(static_cast<lc::Qubit>(picks[0])); break;
                case 1:
                    circ.cnot(static_cast<lc::Qubit>(picks[0]),
                              static_cast<lc::Qubit>(picks[1]));
                    break;
                case 2:
                    circ.toffoli(static_cast<lc::Qubit>(picks[0]),
                                 static_cast<lc::Qubit>(picks[1]),
                                 static_cast<lc::Qubit>(picks[2]));
                    break;
                default:
                    circ.fredkin(static_cast<lc::Qubit>(picks[0]),
                                 static_cast<lc::Qubit>(picks[1]),
                                 static_cast<lc::Qubit>(picks[2]));
                    break;
            }
        }
        const auto table = ls::truth_table(circ);
        std::vector<bool> seen(table.size(), false);
        for (const auto image : table) {
            ASSERT_LT(image, table.size());
            EXPECT_FALSE(seen[image]) << "not injective";
            seen[image] = true;
        }
    }
}

TEST(ClassicalSim, SelfInverseCircuits) {
    // Running a circuit then its mirror restores the input (all classical
    // gates here are self-inverse).
    leqa::util::Rng rng(99);
    lc::Circuit circ(6);
    for (int g = 0; g < 40; ++g) {
        const auto picks = rng.sample_without_replacement(6, 3);
        circ.toffoli(static_cast<lc::Qubit>(picks[0]), static_cast<lc::Qubit>(picks[1]),
                     static_cast<lc::Qubit>(picks[2]));
    }
    lc::Circuit mirrored(6);
    for (auto it = circ.gates().rbegin(); it != circ.gates().rend(); ++it) {
        mirrored.add_gate(*it);
    }
    for (int trial = 0; trial < 20; ++trial) {
        const std::uint64_t input = rng.next() & 0x3F;
        const auto mid = ls::run_classical(circ, input);
        EXPECT_EQ(ls::run_classical(mirrored, mid), input);
    }
}

// ------------------------------------------------------------ statevector --

namespace {
constexpr double kTol = 1e-12;
}

TEST(StateVector, InitialState) {
    ls::StateVector sv(3);
    EXPECT_EQ(sv.dimension(), 8u);
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, kTol);
    EXPECT_NEAR(sv.norm(), 1.0, kTol);
}

TEST(StateVector, HadamardCreatesSuperposition) {
    ls::StateVector sv(1);
    sv.apply(lc::make_h(0));
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0 / std::numbers::sqrt2, kTol);
    EXPECT_NEAR(std::abs(sv.amplitude(1)), 1.0 / std::numbers::sqrt2, kTol);
    // H is self-inverse.
    sv.apply(lc::make_h(0));
    EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, kTol);
}

TEST(StateVector, PhaseGateAlgebra) {
    // T^2 = S, S^2 = Z, T * Tdg = I.
    ls::StateVector a = ls::StateVector::basis(1, 1);
    a.apply(lc::make_t(0));
    a.apply(lc::make_t(0));
    ls::StateVector b = ls::StateVector::basis(1, 1);
    b.apply(lc::make_s(0));
    EXPECT_NEAR(a.max_difference(b), 0.0, kTol);

    ls::StateVector c = ls::StateVector::basis(1, 1);
    c.apply(lc::make_s(0));
    c.apply(lc::make_s(0));
    ls::StateVector d = ls::StateVector::basis(1, 1);
    d.apply(lc::make_z(0));
    EXPECT_NEAR(c.max_difference(d), 0.0, kTol);

    ls::StateVector e = ls::StateVector::basis(1, 1);
    e.apply(lc::make_t(0));
    e.apply(lc::make_tdg(0));
    EXPECT_NEAR(std::abs(e.amplitude(1) - ls::Amplitude{1.0, 0.0}), 0.0, kTol);
}

TEST(StateVector, PauliAlgebra) {
    // Y = i X Z on |0>/|1> up to the global phase the equality encodes;
    // check XZ|psi> equals -iY|psi> amplitude-wise via max_difference of
    // the physically equal states (fidelity check).
    ls::StateVector x = ls::StateVector::basis(1, 0);
    x.apply(lc::make_z(0));
    x.apply(lc::make_x(0));
    ls::StateVector y = ls::StateVector::basis(1, 0);
    y.apply(lc::make_y(0));
    EXPECT_NEAR(x.fidelity(y), 1.0, kTol);
}

TEST(StateVector, CnotAndToffoliMatchClassicalOnBasis) {
    leqa::util::Rng rng(5);
    lc::Circuit circ(4);
    circ.x(0).cnot(0, 1).toffoli(0, 1, 2).fredkin(2, 0, 3).swap(1, 2);
    for (std::uint64_t basis = 0; basis < 16; ++basis) {
        ls::StateVector sv = ls::StateVector::basis(4, basis);
        sv.run(circ);
        const auto expected = ls::run_classical(circ, basis);
        EXPECT_NEAR(std::abs(sv.amplitude(expected)), 1.0, kTol);
    }
}

TEST(StateVector, NormPreservedByRandomFtCircuit) {
    leqa::util::Rng rng(31);
    lc::Circuit circ(5);
    for (int g = 0; g < 60; ++g) {
        const auto picks = rng.sample_without_replacement(5, 2);
        switch (rng.index(5)) {
            case 0: circ.h(static_cast<lc::Qubit>(picks[0])); break;
            case 1: circ.t(static_cast<lc::Qubit>(picks[0])); break;
            case 2: circ.sdg(static_cast<lc::Qubit>(picks[0])); break;
            case 3: circ.y(static_cast<lc::Qubit>(picks[0])); break;
            default:
                circ.cnot(static_cast<lc::Qubit>(picks[0]),
                          static_cast<lc::Qubit>(picks[1]));
                break;
        }
    }
    ls::StateVector sv(5);
    sv.run(circ);
    EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

TEST(StateVector, MaxUnitaryDifferenceDetectsInequality) {
    lc::Circuit a(2);
    a.cnot(0, 1);
    lc::Circuit b(2);
    b.cnot(1, 0);
    EXPECT_GT(ls::max_unitary_difference(a, b), 0.5);
    EXPECT_NEAR(ls::max_unitary_difference(a, a), 0.0, kTol);
}

TEST(StateVector, AncillaComparisonRejectsDirtyAncilla) {
    // A circuit that leaves the ancilla entangled must be rejected.
    lc::Circuit spec(1);
    spec.x(0);
    lc::Circuit dirty(2);
    dirty.x(0);
    dirty.cnot(0, 1); // ancilla now correlated with the data qubit
    EXPECT_THROW((void)ls::max_unitary_difference_with_ancilla(spec, dirty),
                 leqa::util::InternalError);
}

TEST(StateVector, AncillaComparisonAcceptsCleanExpansion) {
    lc::Circuit spec(2);
    spec.cnot(0, 1);
    lc::Circuit clean(3);
    clean.cnot(0, 2); // copy into ancilla
    clean.cnot(2, 1); // use it
    clean.cnot(0, 2); // uncompute
    EXPECT_NEAR(ls::max_unitary_difference_with_ancilla(spec, clean), 0.0, kTol);
}

TEST(StateVector, BasisOutOfRangeThrows) {
    EXPECT_THROW((void)ls::StateVector::basis(2, 4), leqa::util::InputError);
    EXPECT_THROW(ls::StateVector(30), leqa::util::InputError);
}

// Tests for the boundary error model: Status codes, Result<T>, the
// exception-to-Status mapping, and its throwing inverse.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <string>

#include "parser/diagnostics.h"
#include "util/status.h"

namespace lu = leqa::util;

namespace {

lu::Status capture(const std::function<void()>& thrower, const char* origin) {
    try {
        thrower();
    } catch (...) {
        return lu::status_from_exception(std::current_exception(), origin);
    }
    return {};
}

} // namespace

TEST(Status, DefaultIsOk) {
    const lu::Status status;
    EXPECT_TRUE(status.ok());
    EXPECT_EQ(status.code(), lu::StatusCode::Ok);
    EXPECT_EQ(status.to_string(), "Ok");
}

TEST(Status, CodeNamesRoundTrip) {
    for (const auto code :
         {lu::StatusCode::Ok, lu::StatusCode::InvalidArgument, lu::StatusCode::ParseError,
          lu::StatusCode::NotFound, lu::StatusCode::Cancelled,
          lu::StatusCode::DeadlineExceeded, lu::StatusCode::Unavailable,
          lu::StatusCode::Internal}) {
        const std::string& name = lu::status_code_name(code);
        const auto parsed = lu::parse_status_code(name);
        ASSERT_TRUE(parsed.has_value()) << name;
        EXPECT_EQ(*parsed, code);
    }
    EXPECT_FALSE(lu::parse_status_code("NoSuchCode").has_value());
}

TEST(Status, OnlyUnavailableIsRetryable) {
    EXPECT_TRUE(lu::status_code_retryable(lu::StatusCode::Unavailable));
    for (const auto code :
         {lu::StatusCode::Ok, lu::StatusCode::InvalidArgument, lu::StatusCode::ParseError,
          lu::StatusCode::NotFound, lu::StatusCode::Cancelled,
          lu::StatusCode::DeadlineExceeded, lu::StatusCode::Internal}) {
        EXPECT_FALSE(lu::status_code_retryable(code)) << lu::status_code_name(code);
    }
}

TEST(Status, ToStringCarriesCodeMessageOrigin) {
    const lu::Status status(lu::StatusCode::NotFound, "no such bench", "resolve");
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.to_string(), "NotFound: no such bench (at resolve)");
    const lu::Status originless(lu::StatusCode::Internal, "boom");
    EXPECT_EQ(originless.to_string(), "Internal: boom");
}

TEST(Status, ExceptionMappingDiscriminatesTheTaxonomy) {
    using SC = lu::StatusCode;
    EXPECT_EQ(capture([] { throw lu::ParseError("bad syntax"); }, "wire").code(),
              SC::ParseError);
    // The netlist parsers' located ParseError is a util::ParseError too.
    EXPECT_EQ(capture([] {
                  throw leqa::parser::ParseError({"f.qasm", 3}, "bad gate");
              },
                      "resolve")
                  .code(),
              SC::ParseError);
    EXPECT_EQ(capture([] { throw lu::NotFoundError("missing"); }, "resolve").code(),
              SC::NotFound);
    EXPECT_EQ(capture([] { throw lu::InputError("invalid"); }, "config").code(),
              SC::InvalidArgument);
    EXPECT_EQ(capture([] { throw lu::CancelledError("stop"); }, "estimate").code(),
              SC::Cancelled);
    EXPECT_EQ(capture([] { throw lu::DeadlineError("late"); }, "map").code(),
              SC::DeadlineExceeded);
    EXPECT_EQ(capture([] { throw lu::InternalError("bug"); }, "job").code(),
              SC::Internal);
    EXPECT_EQ(capture([] { throw std::runtime_error("misc"); }, "job").code(),
              SC::Internal);

    const lu::Status status = capture([] { throw lu::NotFoundError("gone"); }, "stage");
    EXPECT_EQ(status.message(), "gone");
    EXPECT_EQ(status.origin(), "stage");
}

TEST(Status, ThrowStatusIsTheInverseMapping) {
    EXPECT_THROW(lu::throw_status({lu::StatusCode::ParseError, "x"}), lu::ParseError);
    EXPECT_THROW(lu::throw_status({lu::StatusCode::NotFound, "x"}), lu::NotFoundError);
    EXPECT_THROW(lu::throw_status({lu::StatusCode::InvalidArgument, "x"}),
                 lu::InputError);
    EXPECT_THROW(lu::throw_status({lu::StatusCode::Cancelled, "x"}), lu::CancelledError);
    EXPECT_THROW(lu::throw_status({lu::StatusCode::DeadlineExceeded, "x"}),
                 lu::DeadlineError);
    EXPECT_THROW(lu::throw_status({lu::StatusCode::Unavailable, "x"}),
                 lu::UnavailableError);
    EXPECT_THROW(lu::throw_status({lu::StatusCode::Internal, "x"}), lu::InternalError);
    EXPECT_THROW(lu::throw_status(lu::Status{}), lu::InternalError);

    // Unavailable survives the exception round trip with its code intact
    // (a retryable rejection must not come back as a plain Internal).
    try {
        lu::throw_status({lu::StatusCode::Unavailable, "queue full", "queue"});
        FAIL() << "expected UnavailableError";
    } catch (...) {
        const lu::Status back =
            lu::status_from_exception(std::current_exception(), "queue");
        EXPECT_EQ(back.code(), lu::StatusCode::Unavailable);
        EXPECT_EQ(back.message(), "queue full");
    }

    // Round trip: throw, map back, same code and message.
    try {
        lu::throw_status({lu::StatusCode::NotFound, "lost", "resolve"});
        FAIL() << "expected NotFoundError";
    } catch (...) {
        const lu::Status back =
            lu::status_from_exception(std::current_exception(), "resolve");
        EXPECT_EQ(back.code(), lu::StatusCode::NotFound);
        EXPECT_EQ(back.message(), "lost");
    }
}

TEST(Result, HoldsValueOrStatus) {
    const lu::Result<int> ok_result(42);
    EXPECT_TRUE(ok_result.ok());
    EXPECT_EQ(ok_result.value(), 42);
    EXPECT_EQ(*ok_result, 42);

    const lu::Result<int> failed(lu::Status(lu::StatusCode::NotFound, "gone"));
    EXPECT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), lu::StatusCode::NotFound);
    EXPECT_THROW((void)failed.value(), lu::InternalError);
}

TEST(Result, RejectsOkStatusWithoutValue) {
    EXPECT_THROW(lu::Result<int>{lu::Status{}}, lu::InternalError);
}

TEST(Result, MoveExtractsTheValue) {
    lu::Result<std::string> result(std::string("payload"));
    const std::string moved = std::move(result).value();
    EXPECT_EQ(moved, "payload");
}

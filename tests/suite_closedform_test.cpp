// Closed-form checks covering ALL 18 suite entries (including the largest)
// without synthesizing the big netlists: predicted FT op and ancilla counts
// of the pre-FT circuits must hit the paper's numbers, and the reduction
// polynomials must be irreducible at every paper degree.
#include <gtest/gtest.h>

#include "benchgen/adders.h"
#include "benchgen/gf2_mult.h"
#include "benchgen/suite.h"
#include "mathx/gf2poly.h"
#include "synth/ft_synth.h"

namespace lb = leqa::benchgen;
namespace lm = leqa::mathx;
namespace ls = leqa::synth;

TEST(SuiteClosedForm, EveryEntryPredictsPaperCounts) {
    for (const auto& spec : lb::paper_suite()) {
        // Build only the pre-FT netlist (cheap even for gf2^256mult) and
        // use the closed-form synthesis predictors.
        const auto circ = lb::make_benchmark(spec.name);
        const std::size_t predicted_ops = ls::predicted_ft_ops(circ);
        const std::size_t predicted_qubits =
            circ.num_qubits() + ls::predicted_ancillas(circ);
        if (spec.kind == lb::BenchmarkKind::Adder) {
            // Constructive adder: qubit count matches; op count documented
            // to differ from the paper's (different source synthesis).
            EXPECT_EQ(predicted_qubits, spec.paper_qubits) << spec.name;
            EXPECT_GT(predicted_ops, 100u) << spec.name;
            continue;
        }
        EXPECT_EQ(predicted_ops, spec.paper_ops) << spec.name;
        EXPECT_EQ(predicted_qubits, spec.paper_qubits) << spec.name;
    }
}

TEST(SuiteClosedForm, Gf2ReductionPolynomialsIrreducibleAtAllPaperDegrees) {
    for (const auto& spec : lb::paper_suite()) {
        if (spec.kind != lb::BenchmarkKind::Gf2Mult) continue;
        const int n = spec.size_parameter;
        const bool trinomial = n == 20; // the paper's counts imply this split
        const auto middle = lm::irreducible_middle_terms(n, !trinomial);
        EXPECT_EQ(middle.size(), trinomial ? 1u : 3u) << spec.name;
        std::vector<int> exponents = {n};
        exponents.insert(exponents.end(), middle.begin(), middle.end());
        exponents.push_back(0);
        EXPECT_TRUE(lm::is_irreducible(lm::Gf2Poly::from_exponents(exponents)))
            << spec.name;
    }
}

TEST(SuiteClosedForm, Gf2CountFormulaMatchesGeneratorForAllSizes) {
    for (const auto& spec : lb::paper_suite()) {
        if (spec.kind != lb::BenchmarkKind::Gf2Mult) continue;
        const int n = spec.size_parameter;
        const std::size_t middle = n == 20 ? 1 : 3;
        EXPECT_EQ(lb::gf2_mult_ft_op_count(n, middle), spec.paper_ops) << spec.name;
        const auto circ = lb::make_benchmark(spec.name);
        EXPECT_EQ(circ.size(), lb::gf2_mult_gate_count(n, middle)) << spec.name;
        EXPECT_EQ(circ.num_qubits(), static_cast<std::size_t>(3 * n)) << spec.name;
    }
}

TEST(SuiteClosedForm, SurrogateAncillaPlansAreExact) {
    for (const auto& spec : lb::paper_suite()) {
        if (spec.kind != lb::BenchmarkKind::Surrogate) continue;
        const auto circ = lb::make_benchmark(spec.name);
        EXPECT_EQ(circ.num_qubits(), spec.surrogate_base) << spec.name;
        EXPECT_EQ(circ.num_qubits() + ls::predicted_ancillas(circ), spec.paper_qubits)
            << spec.name;
        EXPECT_EQ(ls::predicted_ft_ops(circ), spec.paper_ops) << spec.name;
    }
}

TEST(SuiteClosedForm, AdderCountsFormula) {
    for (const int n : {1, 4, 8, 20, 64}) {
        const auto counts = lb::vbe_adder_counts(n);
        if (n == 1) {
            EXPECT_EQ(counts.toffolis, 0u);
            EXPECT_EQ(counts.cnots, 2u);
            continue;
        }
        EXPECT_EQ(counts.toffolis, 4u * (n - 1));
        EXPECT_EQ(counts.cnots, 4u * (n - 1) + 2);
    }
}

// Tests for FT synthesis: unitary-level correctness of every decomposition
// (via the statevector simulator), classical functional preservation, and
// the closed-form gate/ancilla count formulas.
#include <gtest/gtest.h>

#include "sim/classical.h"
#include "sim/statevector.h"
#include "synth/decompose.h"
#include "synth/ft_synth.h"
#include "util/rng.h"

namespace lc = leqa::circuit;
namespace ls = leqa::sim;
namespace lsyn = leqa::synth;

namespace {
constexpr double kTol = 1e-9;

lc::Circuit collect(std::size_t num_qubits, const std::function<void(lsyn::GateSink)>& emit) {
    lc::Circuit circ(num_qubits);
    emit([&](const lc::Gate& g) { circ.add_gate(g); });
    return circ;
}
} // namespace

// ------------------------------------------------------------- decompose --

TEST(Decompose, ToffoliFtNetworkIsExact) {
    // The 15-gate network must equal the Toffoli unitary exactly (not just
    // up to phase): compare all basis-state images amplitude-wise.
    lc::Circuit spec(3);
    spec.toffoli(0, 1, 2);
    const auto ft = collect(3, [](const lsyn::GateSink& sink) {
        lsyn::emit_toffoli_ft(0, 1, 2, sink);
    });
    EXPECT_EQ(ft.size(), 15u);
    EXPECT_TRUE(ft.is_ft());
    EXPECT_NEAR(ls::max_unitary_difference(spec, ft), 0.0, kTol);
}

TEST(Decompose, ToffoliFtGateMix) {
    // 2 H + 4 T + 3 Tdg + 6 CNOT, matching the paper's Figure 2(a).
    const auto ft = collect(3, [](const lsyn::GateSink& sink) {
        lsyn::emit_toffoli_ft(0, 1, 2, sink);
    });
    const auto counts = ft.counts();
    EXPECT_EQ(counts.of(lc::GateKind::H), 2u);
    EXPECT_EQ(counts.of(lc::GateKind::T), 4u);
    EXPECT_EQ(counts.of(lc::GateKind::Tdg), 3u);
    EXPECT_EQ(counts.of(lc::GateKind::Cnot), 6u);
}

TEST(Decompose, FredkinAsThreeToffoli) {
    lc::Circuit spec(3);
    spec.fredkin(0, 1, 2);
    const auto lowered = collect(3, [](const lsyn::GateSink& sink) {
        lsyn::emit_fredkin_as_toffoli(0, 1, 2, sink);
    });
    EXPECT_EQ(lowered.size(), 3u);
    EXPECT_EQ(lowered.counts().of(lc::GateKind::Toffoli), 3u);
    EXPECT_NEAR(ls::max_unitary_difference(spec, lowered), 0.0, kTol);
}

TEST(Decompose, SwapAsThreeCnot) {
    lc::Circuit spec(2);
    spec.swap(0, 1);
    const auto lowered = collect(2, [](const lsyn::GateSink& sink) {
        lsyn::emit_swap_as_cnot(0, 1, sink);
    });
    EXPECT_EQ(lowered.counts().of(lc::GateKind::Cnot), 3u);
    EXPECT_NEAR(ls::max_unitary_difference(spec, lowered), 0.0, kTol);
}

TEST(Decompose, McxChainMatchesSpecWithAncilla) {
    for (const std::size_t k : {3u, 4u, 5u}) {
        lc::Circuit spec(k + 1);
        std::vector<lc::Qubit> controls;
        for (std::size_t i = 0; i < k; ++i) controls.push_back(static_cast<lc::Qubit>(i));
        spec.add_gate(lc::make_mcx(controls, static_cast<lc::Qubit>(k)));

        lc::Circuit big(k + 1);
        lc::Qubit next_ancilla = static_cast<lc::Qubit>(k + 1);
        std::vector<lc::Gate> gates;
        lsyn::emit_mcx_chain(controls, static_cast<lc::Qubit>(k),
                             [&] {
                                 big.add_qubit();
                                 return next_ancilla++;
                             },
                             [&](const lc::Gate& g) { gates.push_back(g); });
        for (const auto& g : gates) big.add_gate(g);

        EXPECT_EQ(big.num_qubits(), spec.num_qubits() + (k - 1));
        EXPECT_EQ(big.counts().of(lc::GateKind::Toffoli), 2 * (k - 1));
        EXPECT_EQ(big.counts().of(lc::GateKind::Cnot), 1u);
        EXPECT_NEAR(ls::max_unitary_difference_with_ancilla(spec, big), 0.0, kTol)
            << "k=" << k;
    }
}

TEST(Decompose, McswapChainMatchesSpecWithAncilla) {
    for (const std::size_t k : {2u, 3u}) {
        const std::size_t n = k + 2;
        lc::Circuit spec(n);
        std::vector<lc::Qubit> controls;
        for (std::size_t i = 0; i < k; ++i) controls.push_back(static_cast<lc::Qubit>(i));
        spec.add_gate(lc::make_mcswap(controls, static_cast<lc::Qubit>(k),
                                      static_cast<lc::Qubit>(k + 1)));

        lc::Circuit big(n);
        lc::Qubit next_ancilla = static_cast<lc::Qubit>(n);
        std::vector<lc::Gate> gates;
        lsyn::emit_mcswap_chain(controls, static_cast<lc::Qubit>(k),
                                static_cast<lc::Qubit>(k + 1),
                                [&] {
                                    big.add_qubit();
                                    return next_ancilla++;
                                },
                                [&](const lc::Gate& g) { gates.push_back(g); });
        for (const auto& g : gates) big.add_gate(g);
        EXPECT_NEAR(ls::max_unitary_difference_with_ancilla(spec, big), 0.0, kTol)
            << "k=" << k;
    }
}

TEST(Decompose, CountFormulas) {
    EXPECT_EQ(lsyn::ft_ops_for_mcx(0), 1u);
    EXPECT_EQ(lsyn::ft_ops_for_mcx(1), 1u);
    EXPECT_EQ(lsyn::ft_ops_for_mcx(2), 15u);
    EXPECT_EQ(lsyn::ft_ops_for_mcx(3), 2u * 2u * 15u + 1u);
    EXPECT_EQ(lsyn::ft_ops_for_mcx(5), 2u * 4u * 15u + 1u);
    EXPECT_EQ(lsyn::ancillas_for_mcx(2), 0u);
    EXPECT_EQ(lsyn::ancillas_for_mcx(3), 2u);
    EXPECT_EQ(lsyn::ancillas_for_mcx(6), 5u);

    EXPECT_EQ(lsyn::ft_ops_for_mcswap(0), 3u);
    EXPECT_EQ(lsyn::ft_ops_for_mcswap(1), 45u);
    EXPECT_EQ(lsyn::ft_ops_for_mcswap(2), 30u + 45u);
    EXPECT_EQ(lsyn::ancillas_for_mcswap(1), 0u);
    EXPECT_EQ(lsyn::ancillas_for_mcswap(3), 2u);
}

// --------------------------------------------------------------- ft_synth --

TEST(FtSynth, PassThroughForFtGates) {
    lc::Circuit circ(2);
    circ.h(0).t(1).cnot(0, 1).sdg(0).z(1);
    const auto result = lsyn::ft_synthesize(circ);
    EXPECT_TRUE(circ.same_structure(result.circuit));
    EXPECT_EQ(result.stats.ancillas_added, 0u);
}

TEST(FtSynth, LowersToffoliAndPreservesCounts) {
    lc::Circuit circ(3);
    circ.toffoli(0, 1, 2);
    const auto result = lsyn::ft_synthesize(circ);
    EXPECT_TRUE(result.circuit.is_ft());
    EXPECT_EQ(result.circuit.size(), 15u);
    EXPECT_EQ(result.stats.toffolis_lowered, 1u);
    EXPECT_EQ(result.circuit.size(), lsyn::predicted_ft_ops(circ));
}

TEST(FtSynth, KeepToffoliOption) {
    lc::Circuit circ(3);
    circ.toffoli(0, 1, 2).fredkin(0, 1, 2);
    lsyn::FtSynthOptions options;
    options.keep_toffoli = true;
    const auto result = lsyn::ft_synthesize(circ, options);
    EXPECT_EQ(result.circuit.counts().of(lc::GateKind::Toffoli), 4u); // 1 + 3
    EXPECT_FALSE(result.circuit.is_ft());
}

TEST(FtSynth, UnitaryEquivalenceSmallMixedCircuit) {
    lc::Circuit circ(4);
    circ.h(0).toffoli(0, 1, 2).fredkin(2, 1, 3).swap(0, 3).t(2).cnot(1, 0);
    const auto result = lsyn::ft_synthesize(circ);
    EXPECT_TRUE(result.circuit.is_ft());
    EXPECT_NEAR(ls::max_unitary_difference(circ, result.circuit), 0.0, kTol);
}

TEST(FtSynth, MultiControlledFunctionalEquivalence) {
    // 4-controlled X: FT synthesis adds 3 ancillas; check classically over
    // the original qubits (statevector check runs in the dedicated
    // decompose test; here we validate the whole pipeline output + count
    // formulas on a wider gate).
    lc::Circuit circ(6);
    circ.add_gate(lc::make_mcx({0, 1, 2, 3, 4}, 5));
    const auto result = lsyn::ft_synthesize(circ);
    EXPECT_TRUE(result.circuit.is_ft());
    EXPECT_EQ(result.stats.ancillas_added, 4u);
    EXPECT_EQ(result.circuit.size(), lsyn::predicted_ft_ops(circ));
    EXPECT_EQ(result.circuit.num_qubits(), 6u + lsyn::predicted_ancillas(circ));

    // Classical check on the keep_toffoli stage (bit-exact, all 64 inputs).
    lsyn::FtSynthOptions keep;
    keep.keep_toffoli = true;
    const auto staged = lsyn::ft_synthesize(circ, keep);
    for (std::uint64_t input = 0; input < 64; ++input) {
        const auto expected = ls::run_classical(circ, input);
        const auto got = ls::run_classical(staged.circuit, input) & 0x3F;
        EXPECT_EQ(got, expected) << "input " << input;
        // Ancillas restored to zero.
        EXPECT_EQ(ls::run_classical(staged.circuit, input) >> 6, 0u);
    }
}

TEST(FtSynth, FreshAncillasPerGate) {
    lc::Circuit circ(5);
    circ.add_gate(lc::make_mcx({0, 1, 2, 3}, 4));
    circ.add_gate(lc::make_mcx({0, 1, 2, 3}, 4));
    const auto result = lsyn::ft_synthesize(circ);
    // Two 4-controlled gates, 3 ancillas each, no sharing (paper §4.1).
    EXPECT_EQ(result.stats.ancillas_added, 6u);
}

TEST(FtSynth, SharedAncillasReducesQubits) {
    lc::Circuit circ(5);
    circ.add_gate(lc::make_mcx({0, 1, 2, 3}, 4));
    circ.add_gate(lc::make_mcx({0, 1, 2, 3}, 4));
    lsyn::FtSynthOptions options;
    options.share_ancillas = true;
    const auto result = lsyn::ft_synthesize(circ, options);
    EXPECT_EQ(result.stats.ancillas_added, 3u);

    // Sharing must not change functionality (classical check, staged).
    options.keep_toffoli = true;
    const auto staged = lsyn::ft_synthesize(circ, options);
    for (std::uint64_t input = 0; input < 32; ++input) {
        const auto expected = ls::run_classical(circ, input);
        EXPECT_EQ(ls::run_classical(staged.circuit, input) & 0x1F, expected);
    }
}

TEST(FtSynth, PredictionMatchesSynthesisOnRandomCircuits) {
    leqa::util::Rng rng(1234);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t n = 6 + rng.index(4);
        lc::Circuit circ(n);
        for (int g = 0; g < 25; ++g) {
            const std::size_t k = 1 + rng.index(4); // controls for mcx
            auto picks = rng.sample_without_replacement(n, k + 1);
            std::vector<lc::Qubit> controls(picks.begin(), picks.end() - 1);
            switch (rng.index(4)) {
                case 0:
                    circ.add_gate(lc::make_mcx(controls, static_cast<lc::Qubit>(picks.back())));
                    break;
                case 1:
                    circ.h(static_cast<lc::Qubit>(picks[0]));
                    break;
                case 2:
                    circ.swap(static_cast<lc::Qubit>(picks[0]),
                              static_cast<lc::Qubit>(picks[1]));
                    break;
                default:
                    if (picks.size() >= 3) {
                        std::vector<lc::Qubit> fc(picks.begin(), picks.end() - 2);
                        circ.add_gate(lc::make_mcswap(fc,
                                                      static_cast<lc::Qubit>(picks[picks.size() - 2]),
                                                      static_cast<lc::Qubit>(picks.back())));
                    } else {
                        circ.t(static_cast<lc::Qubit>(picks[0]));
                    }
                    break;
            }
        }
        const auto result = lsyn::ft_synthesize(circ);
        EXPECT_EQ(result.circuit.size(), lsyn::predicted_ft_ops(circ)) << "trial " << trial;
        EXPECT_EQ(result.stats.ancillas_added, lsyn::predicted_ancillas(circ))
            << "trial " << trial;
        EXPECT_TRUE(result.circuit.is_ft());
    }
}

TEST(FtSynth, StatsToStringMentionsKeyFields) {
    lc::Circuit circ(3);
    circ.toffoli(0, 1, 2);
    const auto result = lsyn::ft_synthesize(circ);
    const std::string text = result.stats.to_string();
    EXPECT_NE(text.find("gates 1 -> 15"), std::string::npos);
    EXPECT_NE(text.find("toffolis lowered: 1"), std::string::npos);
}

// Tests for the pluggable fabric topologies: grid bit-compatibility with
// the pre-topology geometry, torus/line adjacency and metric invariants,
// coverage histograms, routing invariants (every route is a chain of
// topology-adjacent hops; torus routes never beat their own metric or lose
// to grid routes), and the topology-aware estimation engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "benchgen/suite.h"
#include "core/engine.h"
#include "core/leqa.h"
#include "core/sweep.h"
#include "fabric/geometry.h"
#include "fabric/topology.h"
#include "iig/iig.h"
#include "qodg/qodg.h"
#include "qspr/channels.h"
#include "qspr/qspr.h"
#include "qspr/router.h"
#include "util/error.h"
#include "util/rng.h"

namespace lb = leqa::benchgen;
namespace lcore = leqa::core;
namespace lf = leqa::fabric;
namespace lq = leqa::qspr;
using leqa::util::InputError;

namespace {

/// Walk a segment route from `from`, requiring every hop to be a
/// topology-adjacent move; returns the final ULB.
lf::UlbId follow_route(const lf::Topology& topo, lf::UlbId from,
                       const std::vector<lf::SegmentId>& route) {
    lf::UlbId cursor = from;
    for (const lf::SegmentId segment : route) {
        const auto [u, v] = topo.segment_endpoints(segment);
        EXPECT_TRUE(cursor == u || cursor == v)
            << "segment " << segment << " does not touch ULB " << cursor;
        const lf::UlbId next = cursor == u ? v : u;
        EXPECT_TRUE(topo.adjacent(cursor, next));
        cursor = next;
    }
    return cursor;
}

lf::UlbCoord random_coord(leqa::util::Rng& rng, const lf::Topology& topo) {
    return {static_cast<int>(rng.index(static_cast<std::size_t>(topo.width()))),
            static_cast<int>(rng.index(static_cast<std::size_t>(topo.height())))};
}

} // namespace

// ------------------------------------------------------------ kinds -------

TEST(TopologyKind, ParseNameRoundTrip) {
    for (const auto kind : {lf::TopologyKind::Grid, lf::TopologyKind::Torus,
                            lf::TopologyKind::Line}) {
        EXPECT_EQ(lf::parse_topology_kind(lf::topology_kind_name(kind)), kind);
    }
    EXPECT_EQ(lf::parse_topology_kind("TORUS"), lf::TopologyKind::Torus);
    EXPECT_THROW((void)lf::parse_topology_kind("moebius"), InputError);
}

TEST(TopologyFactory, BuildsEveryKind) {
    EXPECT_EQ(lf::make_topology(lf::TopologyKind::Grid, 5, 4)->kind(),
              lf::TopologyKind::Grid);
    EXPECT_EQ(lf::make_topology(lf::TopologyKind::Torus, 5, 4)->kind(),
              lf::TopologyKind::Torus);
    EXPECT_EQ(lf::make_topology(lf::TopologyKind::Line, 20, 1)->kind(),
              lf::TopologyKind::Line);
}

TEST(TopologyFactory, LineRejectsTallFabrics) {
    EXPECT_THROW((void)lf::make_topology(lf::TopologyKind::Line, 5, 2), InputError);
    lf::PhysicalParams params;
    params.topology = lf::TopologyKind::Line;
    params.width = 60;
    params.height = 60;
    EXPECT_THROW(params.validate(), InputError);
    params.width = 3600;
    params.height = 1;
    EXPECT_NO_THROW(params.validate());
}

// ----------------------------------------------- grid bit-compatibility ----

TEST(GridTopology, SegmentNumberingMatchesLegacyFormulas) {
    const lf::GridTopology topo(7, 5);
    // Horizontal (x, y)-(x+1, y): id y*(w-1) + x; vertical after all
    // horizontal: H + y*w + x — the exact pre-topology numbering.
    const int h_count = (7 - 1) * 5;
    for (int y = 0; y < 5; ++y) {
        for (int x = 0; x + 1 < 7; ++x) {
            EXPECT_EQ(topo.segment_between(topo.ulb_id({x, y}), topo.ulb_id({x + 1, y})),
                      y * 6 + x);
        }
    }
    for (int y = 0; y + 1 < 5; ++y) {
        for (int x = 0; x < 7; ++x) {
            EXPECT_EQ(topo.segment_between(topo.ulb_id({x, y}), topo.ulb_id({x, y + 1})),
                      h_count + y * 7 + x);
        }
    }
    EXPECT_EQ(topo.num_segments(), static_cast<std::size_t>(h_count + 7 * 4));
    EXPECT_EQ(topo.adjacency().num_edges(), 2 * topo.num_segments());
}

TEST(GridTopology, RouteIsDimensionOrderedXy) {
    const lf::GridTopology topo(10, 8);
    const lf::FabricGeometry legacy(10, 8);
    leqa::util::Rng rng(11);
    for (int trial = 0; trial < 50; ++trial) {
        const auto a = random_coord(rng, topo);
        const auto b = random_coord(rng, topo);
        const auto route = topo.route(a, b);
        EXPECT_EQ(route, legacy.xy_route(a, b));
        EXPECT_EQ(route.size(), static_cast<std::size_t>(topo.distance(a, b)));
        EXPECT_EQ(follow_route(topo, topo.ulb_id(a), route), topo.ulb_id(b));
    }
}

TEST(GridTopology, CoverageMatchesHistogramBuilder) {
    const lf::GridTopology topo(60, 60);
    const auto from_topo = topo.coverage_histogram(6);
    const auto reference = lf::CoverageHistogram::build(60, 60, 6);
    ASSERT_EQ(from_topo.bins().size(), reference.bins().size());
    for (std::size_t i = 0; i < reference.bins().size(); ++i) {
        EXPECT_DOUBLE_EQ(from_topo.bins()[i].probability,
                         reference.bins()[i].probability);
        EXPECT_DOUBLE_EQ(from_topo.bins()[i].multiplicity,
                         reference.bins()[i].multiplicity);
    }
    // Zone extent matches the estimator's legacy zone_side rule.
    for (const double area : {0.0, 1.0, 2.0, 17.3, 36.0, 10000.0}) {
        EXPECT_EQ(topo.zone_extent(area),
                  lcore::LeqaEstimator::zone_side(area, 60, 60));
    }
}

// ----------------------------------------------------------- torus ---------

TEST(TorusTopology, WrapSegmentsAndDistance) {
    const lf::TorusTopology topo(6, 4);
    // Grid segments + one wrap per row and per column.
    EXPECT_EQ(topo.num_segments(), static_cast<std::size_t>(5 * 4 + 6 * 3 + 4 + 6));
    // Wrap neighbors exist.
    EXPECT_TRUE(topo.adjacent(topo.ulb_id({0, 0}), topo.ulb_id({5, 0})));
    EXPECT_TRUE(topo.adjacent(topo.ulb_id({2, 0}), topo.ulb_id({2, 3})));
    // Every ULB has degree 4 on a torus with both dims >= 3.
    for (lf::UlbId id = 0; static_cast<std::size_t>(id) < topo.num_ulbs(); ++id) {
        EXPECT_EQ(topo.neighbors(id).size(), 4u);
    }
    EXPECT_EQ(topo.distance({0, 0}, {5, 0}), 1);
    EXPECT_EQ(topo.distance({0, 0}, {3, 2}), 3 + 2);
    EXPECT_EQ(topo.distance({1, 1}, {5, 3}), 2 + 2);
}

TEST(TorusTopology, SmallDimensionsHaveNoParallelChannels) {
    // Wrap channels only along dimensions >= 3: no ULB pair may be
    // connected twice, and degree counts stay consistent.
    for (const auto& [w, h] : std::vector<std::pair<int, int>>{
             {2, 2}, {1, 5}, {2, 7}, {3, 2}, {1, 1}}) {
        const lf::TorusTopology topo(w, h);
        std::set<std::pair<lf::UlbId, lf::UlbId>> seen;
        for (std::size_t s = 0; s < topo.num_segments(); ++s) {
            const auto ends = topo.segment_endpoints(static_cast<lf::SegmentId>(s));
            EXPECT_TRUE(seen.insert(ends).second)
                << w << "x" << h << " duplicate segment " << s;
        }
        EXPECT_EQ(topo.adjacency().num_edges(), 2 * topo.num_segments());
    }
}

TEST(TorusTopology, RoutesAreShortestAndAdjacent) {
    const lf::TorusTopology topo(9, 7);
    leqa::util::Rng rng(23);
    for (int trial = 0; trial < 60; ++trial) {
        const auto a = random_coord(rng, topo);
        const auto b = random_coord(rng, topo);
        const auto route = topo.route(a, b);
        EXPECT_EQ(route.size(), static_cast<std::size_t>(topo.distance(a, b)));
        EXPECT_EQ(follow_route(topo, topo.ulb_id(a), route), topo.ulb_id(b));
    }
}

TEST(TorusTopology, RoutesNeverLongerThanGrid) {
    // On the same geometry the wraparound can only help: for every pair,
    // |torus route| <= |grid route|, with a strict win across the corners.
    const lf::GridTopology grid(12, 12);
    const lf::TorusTopology torus(12, 12);
    std::size_t strict_wins = 0;
    for (int x0 = 0; x0 < 12; x0 += 3) {
        for (int y0 = 0; y0 < 12; y0 += 3) {
            for (int x1 = 0; x1 < 12; x1 += 3) {
                for (int y1 = 0; y1 < 12; y1 += 3) {
                    const lf::UlbCoord a{x0, y0};
                    const lf::UlbCoord b{x1, y1};
                    const auto grid_route = grid.route(a, b);
                    const auto torus_route = torus.route(a, b);
                    EXPECT_LE(torus_route.size(), grid_route.size());
                    if (torus_route.size() < grid_route.size()) ++strict_wins;
                }
            }
        }
    }
    EXPECT_GT(strict_wins, 0u);
    EXPECT_LT(torus.route({0, 0}, {11, 11}).size(),
              grid.route({0, 0}, {11, 11}).size());
}

TEST(TorusTopology, RingsCoverFabricExactlyOnce) {
    for (const auto& [w, h] : std::vector<std::pair<int, int>>{
             {5, 4}, {6, 6}, {3, 9}, {1, 7}, {2, 2}}) {
        const lf::TorusTopology topo(w, h);
        const lf::UlbCoord center{w / 2, h / 3};
        std::set<std::pair<int, int>> seen;
        for (int r = 0; r <= std::max(w, h); ++r) {
            for (const auto c : topo.ring(center, r)) {
                EXPECT_TRUE(topo.in_bounds(c));
                EXPECT_TRUE(seen.insert({c.x, c.y}).second)
                    << w << "x" << h << " duplicate " << c.to_string() << " r=" << r;
            }
        }
        EXPECT_EQ(seen.size(), topo.num_ulbs()) << w << "x" << h;
    }
}

TEST(TorusTopology, MidpointSitsBetween) {
    const lf::TorusTopology topo(10, 10);
    // Wrap-aware: the midpoint of (0,0) and (9,9) is across the seam.
    const auto mid = topo.midpoint({0, 0}, {9, 9});
    EXPECT_LE(topo.distance({0, 0}, mid), 2);
    EXPECT_LE(topo.distance(mid, {9, 9}), 2);
    EXPECT_EQ(topo.midpoint({2, 2}, {6, 2}), (lf::UlbCoord{4, 2}));
}

TEST(TorusTopology, CoverageIsOneTranslationInvariantBin) {
    const lf::TorusTopology topo(60, 60);
    const auto histogram = topo.coverage_histogram(6);
    ASSERT_EQ(histogram.bins().size(), 1u);
    EXPECT_DOUBLE_EQ(histogram.bins()[0].probability, 36.0 / 3600.0);
    EXPECT_DOUBLE_EQ(histogram.bins()[0].multiplicity, 3600.0);
    EXPECT_DOUBLE_EQ(histogram.cells(), 3600.0);
    EXPECT_THROW((void)topo.coverage_histogram(61), InputError);
}

// ------------------------------------------------------------ line ---------

TEST(LineTopology, GeometryAndMetric) {
    const lf::LineTopology topo(8);
    EXPECT_EQ(topo.num_segments(), 7u);
    EXPECT_EQ(topo.distance({0, 0}, {7, 0}), 7);
    EXPECT_EQ(topo.route({0, 0}, {7, 0}).size(), 7u);
    EXPECT_EQ(follow_route(topo, topo.ulb_id({0, 0}), topo.route({0, 0}, {7, 0})),
              topo.ulb_id({7, 0}));
    EXPECT_THROW(lf::LineTopology(5, 3), InputError);
}

TEST(LineTopology, ZoneExtentIsIntervalLength) {
    const lf::LineTopology topo(100);
    EXPECT_EQ(topo.zone_extent(0.0), 1);
    EXPECT_EQ(topo.zone_extent(4.0), 4);   // a 1x4 interval, not a 2x2 square
    EXPECT_EQ(topo.zone_extent(4.2), 5);
    EXPECT_EQ(topo.zone_extent(1e9), 100); // clamped to the row
}

TEST(LineTopology, CoverageMatchesPerCell1dTable) {
    const int a = 40;
    const int s = 6;
    const lf::LineTopology topo(a);
    const auto histogram = topo.coverage_histogram(s);
    EXPECT_LE(histogram.bins().size(), static_cast<std::size_t>(s));

    // Per-cell 1D reference: nx = min{x, a-x+1, s, a-s+1} over denom.
    double total_cells = 0.0;
    double weighted = 0.0;
    for (const auto& bin : histogram.bins()) {
        total_cells += bin.multiplicity;
        weighted += bin.probability * bin.multiplicity;
    }
    EXPECT_DOUBLE_EQ(total_cells, static_cast<double>(a));
    double reference = 0.0;
    for (int x = 1; x <= a; ++x) {
        reference += std::min({x, a - x + 1, s, a - s + 1}) /
                     static_cast<double>(a - s + 1);
    }
    EXPECT_NEAR(weighted, reference, 1e-12);
    // One zone covers s cells on average: sum of P over cells == s.
    EXPECT_NEAR(weighted, static_cast<double>(s), 1e-12);
}

// --------------------------------------------- router / QSPR invariants ----

class RouterTopologySweep : public ::testing::TestWithParam<lf::TopologyKind> {};

TEST_P(RouterTopologySweep, MazeRoutesAreAdjacentHopChains) {
    const auto kind = GetParam();
    const int width = kind == lf::TopologyKind::Line ? 64 : 9;
    const int height = kind == lf::TopologyKind::Line ? 1 : 7;
    const lf::FabricGeometry geometry(lf::make_topology(kind, width, height));
    const lq::MazeRouter router(geometry, 3);
    lq::ChannelReservations channels(geometry.num_segments(), 2, 100.0);

    leqa::util::Rng rng(37);
    const lf::Topology& topo = geometry.topology();
    for (int trial = 0; trial < 40; ++trial) {
        const auto a = random_coord(rng, topo);
        const auto b = random_coord(rng, topo);
        const auto route = router.route(a, b, trial * 50.0, channels, 2, 100.0);
        EXPECT_EQ(follow_route(topo, topo.ulb_id(a), route), topo.ulb_id(b));
        if (a == b) {
            EXPECT_TRUE(route.empty());
        }
        // Seed congestion so later trials route under pressure.
        (void)channels.route(route, trial * 50.0);
    }
}

TEST_P(RouterTopologySweep, QsprMapsEndToEnd) {
    const auto kind = GetParam();
    lf::PhysicalParams params;
    params.topology = kind;
    params.width = kind == lf::TopologyKind::Line ? 64 : 8;
    params.height = kind == lf::TopologyKind::Line ? 1 : 8;
    const auto ft = leqa::synth::ft_synthesize(lb::ham3()).circuit;
    for (const auto routing : {lq::RoutingAlgorithm::Maze, lq::RoutingAlgorithm::Xy}) {
        lq::QsprOptions options;
        options.routing = routing;
        const auto result = lq::QsprMapper(params, options).map(ft);
        EXPECT_GT(result.latency_us, 0.0) << lq::routing_algorithm_name(routing);
        // Deterministic re-run.
        EXPECT_DOUBLE_EQ(lq::QsprMapper(params, options).map(ft).latency_us,
                         result.latency_us);
    }
}

INSTANTIATE_TEST_SUITE_P(Kinds, RouterTopologySweep,
                         ::testing::Values(lf::TopologyKind::Grid,
                                           lf::TopologyKind::Torus,
                                           lf::TopologyKind::Line));

TEST(QsprTopology, UncongestedMazeRoutesNeverLongerOnTorus) {
    // With empty channels the maze router's cost is hops * Tmove, so its
    // routes are shortest paths; on the same geometry the torus metric can
    // only help, route by route.
    const lf::FabricGeometry grid(lf::make_topology(lf::TopologyKind::Grid, 11, 9));
    const lf::FabricGeometry torus(lf::make_topology(lf::TopologyKind::Torus, 11, 9));
    const lq::MazeRouter grid_router(grid, 4);
    const lq::MazeRouter torus_router(torus, 4);
    const lq::ChannelReservations empty_grid(grid.num_segments(), 5, 100.0);
    const lq::ChannelReservations empty_torus(torus.num_segments(), 5, 100.0);

    leqa::util::Rng rng(53);
    for (int trial = 0; trial < 60; ++trial) {
        const auto a = random_coord(rng, grid.topology());
        const auto b = random_coord(rng, grid.topology());
        const auto on_grid = grid_router.route(a, b, 0.0, empty_grid, 5, 100.0);
        const auto on_torus = torus_router.route(a, b, 0.0, empty_torus, 5, 100.0);
        EXPECT_EQ(on_grid.size(), static_cast<std::size_t>(grid.manhattan(a, b)));
        EXPECT_EQ(on_torus.size(), static_cast<std::size_t>(torus.manhattan(a, b)));
        EXPECT_LE(on_torus.size(), on_grid.size());
    }
}

// --------------------------------------------------- estimation engine -----

TEST(EngineTopology, GridMatchesReferenceAcrossBenchSuite) {
    // The tentpole parity bar restated on the topology axis: an explicit
    // grid topology must reproduce the pre-topology golden path to 1e-9.
    for (const auto& spec : lb::paper_suite()) {
        if (spec.paper_ops > 20000) continue; // keep runtime modest
        const auto ft = lb::make_ft_benchmark(spec.name).circuit;
        const leqa::qodg::Qodg graph(ft);
        const leqa::iig::Iig iig(ft);
        const auto profile = lcore::CircuitProfile::build(graph, iig);
        lf::PhysicalParams params;
        params.topology = lf::TopologyKind::Grid;
        const auto staged = lcore::EstimationEngine(params).estimate(profile);
        const auto golden =
            lcore::LeqaEstimator(params).estimate_reference(graph, iig);
        const double scale = std::max(std::abs(golden.latency_us), 1e-300);
        EXPECT_LE(std::abs(staged.latency_us - golden.latency_us) / scale, 1e-9)
            << spec.name;
    }
}

TEST(EngineTopology, TorusAndLineEstimateEndToEnd) {
    const auto ft = lb::make_ft_benchmark("gf2^16mult").circuit;
    const leqa::qodg::Qodg graph(ft);
    const leqa::iig::Iig iig(ft);
    const auto profile = lcore::CircuitProfile::build(graph, iig);

    lf::PhysicalParams grid;
    const auto on_grid = lcore::EstimationEngine(grid).estimate(profile);

    lf::PhysicalParams torus = grid;
    torus.topology = lf::TopologyKind::Torus;
    const auto on_torus = lcore::EstimationEngine(torus).estimate(profile);

    lf::PhysicalParams line = grid;
    line.topology = lf::TopologyKind::Line;
    line.width = grid.width * grid.height;
    line.height = 1;
    const auto on_line = lcore::EstimationEngine(line).estimate(profile);

    for (const auto* estimate : {&on_torus, &on_line}) {
        EXPECT_GT(estimate->latency_us, 0.0);
        EXPECT_TRUE(std::isfinite(estimate->latency_us));
        EXPECT_GT(estimate->l_cnot_avg_us, 0.0);
        EXPECT_EQ(estimate->e_sq.size(), on_grid.e_sq.size());
    }
    // Same circuit profile: the circuit-side statistics are unchanged.
    EXPECT_DOUBLE_EQ(on_torus.zone_area_b, on_grid.zone_area_b);
    EXPECT_DOUBLE_EQ(on_line.d_uncongest_us, on_grid.d_uncongest_us);
}

TEST(EngineTopology, ReferencePathRejectsNonGrid) {
    const auto ft = leqa::synth::ft_synthesize(lb::ham3()).circuit;
    const leqa::qodg::Qodg graph(ft);
    const leqa::iig::Iig iig(ft);
    lf::PhysicalParams params;
    params.topology = lf::TopologyKind::Torus;
    const lcore::LeqaEstimator estimator(params);
    EXPECT_THROW((void)estimator.estimate_reference(graph, iig), InputError);
    EXPECT_GT(estimator.estimate(graph, iig).latency_us, 0.0); // staged path fine
}

TEST(EngineTopology, SweepTopologyCoversAllKinds) {
    const auto ft = leqa::synth::ft_synthesize(lb::ham3()).circuit;
    const leqa::qodg::Qodg graph(ft);
    const leqa::iig::Iig iig(ft);
    const auto profile = lcore::CircuitProfile::build(graph, iig);
    lf::PhysicalParams base;
    base.width = 20;
    base.height = 20;
    const auto sweep = lcore::sweep_topology(
        profile, base,
        {lf::TopologyKind::Grid, lf::TopologyKind::Torus, lf::TopologyKind::Line});
    ASSERT_EQ(sweep.points.size(), 3u);
    EXPECT_EQ(sweep.points[0].params.topology, lf::TopologyKind::Grid);
    EXPECT_EQ(sweep.points[2].params.topology, lf::TopologyKind::Line);
    EXPECT_EQ(sweep.points[2].params.width, 400); // area-preserving row
    EXPECT_EQ(sweep.points[2].params.height, 1);
    for (const auto& point : sweep.points) {
        EXPECT_GT(point.estimate.latency_us, 0.0);
    }
}

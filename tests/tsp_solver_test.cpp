// Tests for the exact / heuristic TSP solvers and their agreement with the
// closed-form bounds LEQA uses (Eqs. 13-15).
#include <gtest/gtest.h>

#include <cmath>

#include "mathx/tsp.h"
#include "mathx/tsp_solver.h"
#include "util/error.h"
#include "util/rng.h"

namespace lm = leqa::mathx;

namespace {
std::vector<lm::Point2D> random_points(std::size_t n, leqa::util::Rng& rng,
                                       double side = 1.0) {
    std::vector<lm::Point2D> points(n);
    for (auto& p : points) {
        p.x = rng.uniform(0.0, side);
        p.y = rng.uniform(0.0, side);
    }
    return points;
}
} // namespace

TEST(TspSolver, Distances) {
    EXPECT_DOUBLE_EQ(lm::euclidean({0, 0}, {3, 4}), 5.0);
    const std::vector<lm::Point2D> pts{{0, 0}, {1, 0}, {1, 1}};
    EXPECT_DOUBLE_EQ(lm::path_length(pts, {0, 1, 2}), 2.0);
    EXPECT_DOUBLE_EQ(lm::tour_length(pts, {0, 1, 2}), 2.0 + std::sqrt(2.0));
}

TEST(TspSolver, ExactTrivialCases) {
    EXPECT_DOUBLE_EQ(lm::shortest_hamiltonian_path_exact({}), 0.0);
    EXPECT_DOUBLE_EQ(lm::shortest_hamiltonian_path_exact({{0.5, 0.5}}), 0.0);
    EXPECT_DOUBLE_EQ(lm::shortest_hamiltonian_path_exact({{0, 0}, {0, 2}}), 2.0);
    EXPECT_DOUBLE_EQ(lm::shortest_tour_exact({{0, 0}, {0, 2}}), 4.0);
}

TEST(TspSolver, ExactUnitSquareCorners) {
    const std::vector<lm::Point2D> corners{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
    EXPECT_NEAR(lm::shortest_tour_exact(corners), 4.0, 1e-12);
    EXPECT_NEAR(lm::shortest_hamiltonian_path_exact(corners), 3.0, 1e-12);
}

TEST(TspSolver, ExactCollinear) {
    const std::vector<lm::Point2D> line{{0, 0}, {5, 0}, {2, 0}, {9, 0}, {4, 0}};
    EXPECT_NEAR(lm::shortest_hamiltonian_path_exact(line), 9.0, 1e-12);
    EXPECT_NEAR(lm::shortest_tour_exact(line), 18.0, 1e-12);
}

TEST(TspSolver, PathNeverExceedsTour) {
    leqa::util::Rng rng(55);
    for (int trial = 0; trial < 15; ++trial) {
        const auto pts = random_points(3 + rng.index(8), rng);
        const double path = lm::shortest_hamiltonian_path_exact(pts);
        const double tour = lm::shortest_tour_exact(pts);
        EXPECT_LE(path, tour + 1e-12);
    }
}

TEST(TspSolver, HeuristicMatchesExactOnSmallInstances) {
    leqa::util::Rng rng(77);
    int exact_hits = 0;
    const int trials = 25;
    for (int trial = 0; trial < trials; ++trial) {
        const auto pts = random_points(3 + rng.index(7), rng);
        const double exact = lm::shortest_tour_exact(pts);
        const double heuristic = lm::tour_heuristic(pts);
        EXPECT_GE(heuristic, exact - 1e-9); // never better than optimal
        EXPECT_LE(heuristic, exact * 1.15 + 1e-9); // 2-opt is near-optimal here
        if (heuristic <= exact * 1.001) ++exact_hits;
    }
    EXPECT_GE(exact_hits, trials * 2 / 3); // usually finds the optimum
}

TEST(TspSolver, HeuristicPathUpperBoundsExactPath) {
    leqa::util::Rng rng(99);
    for (int trial = 0; trial < 15; ++trial) {
        const auto pts = random_points(4 + rng.index(7), rng);
        const double exact = lm::shortest_hamiltonian_path_exact(pts);
        const double heuristic = lm::hamiltonian_path_heuristic(pts);
        EXPECT_GE(heuristic, exact - 1e-9);
    }
}

TEST(TspSolver, BhhBoundsBracketEmpiricalTours) {
    // The constants of Eqs. 13-14 should bracket the mean optimal tour for
    // moderately many uniform points (they are asymptotic bounds; at n=12
    // the empirical mean sits between them or slightly below the lower
    // bound's asymptote, so we allow a small tolerance).
    leqa::util::Rng rng(2025);
    const std::size_t n = 12;
    double sum = 0.0;
    const int trials = 200;
    for (int trial = 0; trial < trials; ++trial) {
        sum += lm::shortest_tour_exact(random_points(n, rng));
    }
    const double mean = sum / trials;
    const double lower = lm::tsp_tour_lower_bound(static_cast<double>(n));
    const double upper = lm::tsp_tour_upper_bound(static_cast<double>(n));
    EXPECT_GT(mean, lower * 0.85);
    EXPECT_LT(mean, upper * 1.05);
}

TEST(TspSolver, RejectsOversizedExactInstance) {
    leqa::util::Rng rng(1);
    const auto pts = random_points(16, rng);
    EXPECT_THROW((void)lm::shortest_hamiltonian_path_exact(pts), leqa::util::InputError);
}

TEST(TspSolver, OrderSizeMismatchThrows) {
    const std::vector<lm::Point2D> pts{{0, 0}, {1, 1}};
    EXPECT_THROW((void)lm::path_length(pts, {0}), leqa::util::InputError);
}

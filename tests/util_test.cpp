// Unit tests for the util module: strings, rng, table, args, env, logging,
// and the JSON value parser backing the service wire format.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/args.h"
#include "util/env.h"
#include "util/error.h"
#include "util/json.h"
#include "util/json_value.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/strings.h"
#include "util/table.h"

namespace lu = leqa::util;

// ---------------------------------------------------------------- strings --

TEST(Strings, TrimRemovesSurroundingWhitespace) {
    EXPECT_EQ(lu::trim("  hello  "), "hello");
    EXPECT_EQ(lu::trim("\t\nx\r "), "x");
    EXPECT_EQ(lu::trim(""), "");
    EXPECT_EQ(lu::trim("   "), "");
    EXPECT_EQ(lu::trim("no-trim"), "no-trim");
}

TEST(Strings, ToLower) {
    EXPECT_EQ(lu::to_lower("CNOT"), "cnot");
    EXPECT_EQ(lu::to_lower("MiXeD123"), "mixed123");
}

TEST(Strings, SplitKeepsEmptyFields) {
    const auto parts = lu::split("a,,b", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitWhitespaceDropsEmptyFields) {
    const auto parts = lu::split_whitespace("  t3  a   b c\t");
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "t3");
    EXPECT_EQ(parts[3], "c");
}

TEST(Strings, StartsEndsWith) {
    EXPECT_TRUE(lu::starts_with("gf2^16mult", "gf2"));
    EXPECT_FALSE(lu::starts_with("gf", "gf2"));
    EXPECT_TRUE(lu::ends_with("bench.real", ".real"));
    EXPECT_FALSE(lu::ends_with("real", ".real"));
}

TEST(Strings, Join) {
    EXPECT_EQ(lu::join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(lu::join({}, ", "), "");
}

TEST(Strings, ParseIntStrict) {
    EXPECT_EQ(lu::parse_int("42").value(), 42);
    EXPECT_EQ(lu::parse_int(" -7 ").value(), -7);
    EXPECT_FALSE(lu::parse_int("4.2").has_value());
    EXPECT_FALSE(lu::parse_int("42x").has_value());
    EXPECT_FALSE(lu::parse_int("").has_value());
}

TEST(Strings, ParseDoubleStrict) {
    EXPECT_DOUBLE_EQ(lu::parse_double("2.5").value(), 2.5);
    EXPECT_DOUBLE_EQ(lu::parse_double("1e-3").value(), 1e-3);
    EXPECT_FALSE(lu::parse_double("abc").has_value());
    EXPECT_FALSE(lu::parse_double("1.0extra").has_value());
}

TEST(Strings, FormatScientificMatchesPaperStyle) {
    EXPECT_EQ(lu::format_scientific(1.617, 3), "1.617E+00");
    EXPECT_EQ(lu::format_scientific(0.0493, 3), "4.930E-02");
}

TEST(Strings, IdentifierValidation) {
    EXPECT_TRUE(lu::is_identifier("gf2^16mult"));
    EXPECT_TRUE(lu::is_identifier("q0"));
    EXPECT_TRUE(lu::is_identifier("_anc"));
    EXPECT_FALSE(lu::is_identifier("0q"));
    EXPECT_FALSE(lu::is_identifier(""));
    EXPECT_FALSE(lu::is_identifier("a b"));
}

// -------------------------------------------------------------------- rng --

TEST(Rng, DeterministicFromSeed) {
    lu::Rng a(123);
    lu::Rng b(123);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
}

TEST(Rng, DifferentSeedsDiffer) {
    lu::Rng a(1);
    lu::Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntInRange) {
    lu::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniform_int(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, UniformIntSingleton) {
    lu::Rng rng(7);
    EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntRejectsBadRange) {
    lu::Rng rng(7);
    EXPECT_THROW((void)rng.uniform_int(2, 1), lu::InputError);
}

TEST(Rng, UniformCoversUnitInterval) {
    lu::Rng rng(11);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Rng, IndexBounds) {
    lu::Rng rng(3);
    for (int i = 0; i < 100; ++i) {
        EXPECT_LT(rng.index(10), 10u);
    }
    EXPECT_THROW((void)rng.index(0), lu::InputError);
}

TEST(Rng, SampleWithoutReplacementIsDistinct) {
    lu::Rng rng(5);
    const auto sample = rng.sample_without_replacement(50, 20);
    EXPECT_EQ(sample.size(), 20u);
    const std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 20u);
    for (const auto v : sample) EXPECT_LT(v, 50u);
}

TEST(Rng, ShuffleIsPermutation) {
    lu::Rng rng(9);
    std::vector<int> values{1, 2, 3, 4, 5, 6, 7, 8};
    auto shuffled = values;
    rng.shuffle(shuffled);
    std::sort(shuffled.begin(), shuffled.end());
    EXPECT_EQ(shuffled, values);
}

// ------------------------------------------------------------------ table --

TEST(Table, RendersAlignedColumns) {
    lu::Table t({"Benchmark", "Delay"});
    t.add_row({"8bitadder", "1.617"});
    t.add_row({"gf2^16mult", "4.460"});
    const std::string text = t.to_string();
    EXPECT_NE(text.find("Benchmark"), std::string::npos);
    EXPECT_NE(text.find("8bitadder"), std::string::npos);
    EXPECT_NE(text.find("gf2^16mult"), std::string::npos);
    // All lines equal width.
    std::size_t width = 0;
    std::size_t start = 0;
    while (start < text.size()) {
        auto end = text.find('\n', start);
        if (end == std::string::npos) end = text.size();
        if (width == 0) width = end - start;
        EXPECT_EQ(end - start, width);
        start = end + 1;
    }
}

TEST(Table, RowWidthMismatchThrows) {
    lu::Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), lu::InputError);
}

TEST(Table, CsvEscaping) {
    EXPECT_EQ(lu::csv_escape("plain"), "plain");
    EXPECT_EQ(lu::csv_escape("a,b"), "\"a,b\"");
    EXPECT_EQ(lu::csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Table, CsvOutput) {
    lu::Table t({"name", "value"});
    t.add_row({"x", "1"});
    t.add_separator(); // separators are skipped in CSV
    t.add_row({"y,z", "2"});
    EXPECT_EQ(t.to_csv(), "name,value\nx,1\n\"y,z\",2\n");
}

// ------------------------------------------------------------------- args --

TEST(Args, FlagsOptionsPositionals) {
    lu::ArgParser parser("test tool");
    parser.add_flag("verbose", "more output");
    parser.add_option("fabric", "fabric size", "60x60");
    parser.add_positional("netlist", "input file");
    const char* argv[] = {"tool", "--verbose", "--fabric", "80x80", "input.qasm"};
    ASSERT_TRUE(parser.parse(5, argv));
    EXPECT_TRUE(parser.flag("verbose"));
    EXPECT_EQ(parser.option("fabric"), "80x80");
    EXPECT_TRUE(parser.option_given("fabric"));
    EXPECT_EQ(parser.positional("netlist").value(), "input.qasm");
}

TEST(Args, EqualsSyntaxAndDefaults) {
    lu::ArgParser parser("test tool");
    parser.add_option("nc", "channel capacity", "5");
    const char* argv[] = {"tool", "--nc=9"};
    ASSERT_TRUE(parser.parse(2, argv));
    EXPECT_EQ(parser.option_int("nc"), 9);

    lu::ArgParser defaults("test tool");
    defaults.add_option("nc", "channel capacity", "5");
    const char* argv2[] = {"tool"};
    ASSERT_TRUE(defaults.parse(1, argv2));
    EXPECT_EQ(defaults.option_int("nc"), 5);
    EXPECT_FALSE(defaults.option_given("nc"));
}

TEST(Args, UnknownOptionThrows) {
    lu::ArgParser parser("test tool");
    const char* argv[] = {"tool", "--bogus"};
    EXPECT_THROW(parser.parse(2, argv), lu::InputError);
}

TEST(Args, MissingRequiredPositionalThrows) {
    lu::ArgParser parser("test tool");
    parser.add_positional("input", "file");
    const char* argv[] = {"tool"};
    EXPECT_THROW(parser.parse(1, argv), lu::InputError);
}

TEST(Args, MalformedIntegerOptionThrows) {
    lu::ArgParser parser("test tool");
    parser.add_option("nc", "capacity", "x");
    const char* argv[] = {"tool"};
    ASSERT_TRUE(parser.parse(1, argv));
    EXPECT_THROW((void)parser.option_int("nc"), lu::InputError);
}

TEST(Args, RestCollectsExtraPositionals) {
    lu::ArgParser parser("test tool");
    parser.add_positional("input", "first input");
    parser.add_rest("inputs", "more inputs");
    const char* argv[] = {"tool", "a.qasm", "b.qasm", "bench:ham3"};
    ASSERT_TRUE(parser.parse(4, argv));
    EXPECT_EQ(parser.positional("input").value(), "a.qasm");
    ASSERT_EQ(parser.rest().size(), 2u);
    EXPECT_EQ(parser.rest()[0], "b.qasm");
    EXPECT_EQ(parser.rest()[1], "bench:ham3");

    // Without add_rest, extras are still rejected.
    lu::ArgParser strict("test tool");
    strict.add_positional("input", "only input");
    const char* argv2[] = {"tool", "a", "b"};
    EXPECT_THROW(strict.parse(3, argv2), lu::InputError);
}

TEST(Args, OptionSizeRejectsNegatives) {
    lu::ArgParser parser("test tool");
    parser.add_option("threads", "worker threads", "0");
    const char* argv[] = {"tool", "--threads", "-1"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_EQ(parser.option_int("threads"), -1); // the raw accessor still works
    EXPECT_THROW((void)parser.option_size("threads"), lu::InputError);

    const char* argv2[] = {"tool", "--threads", "8"};
    lu::ArgParser ok("test tool");
    ok.add_option("threads", "worker threads", "0");
    ASSERT_TRUE(ok.parse(3, argv2));
    EXPECT_EQ(ok.option_size("threads"), 8u);
}

// ------------------------------------------------------------- json value --

TEST(JsonValue, ParsesScalarsAndContainers) {
    const lu::JsonValue root = lu::json_parse(
        R"({"a":1,"b":-2.5e3,"s":"x\ny","t":true,"f":false,"n":null,)"
        R"("arr":[1,2,3],"nested":{"k":"v"}})");
    EXPECT_EQ(root.at("a").as_int(), 1);
    EXPECT_DOUBLE_EQ(root.at("b").as_number(), -2500.0);
    EXPECT_EQ(root.at("s").as_string(), "x\ny");
    EXPECT_TRUE(root.at("t").as_bool());
    EXPECT_FALSE(root.at("f").as_bool());
    EXPECT_TRUE(root.at("n").is_null());
    ASSERT_EQ(root.at("arr").items().size(), 3u);
    EXPECT_EQ(root.at("arr").items()[2].as_int(), 3);
    EXPECT_EQ(root.at("nested").at("k").as_string(), "v");
    EXPECT_EQ(root.find("missing"), nullptr);
}

TEST(JsonValue, UnicodeEscapesDecodeToUtf8) {
    const lu::JsonValue value = lu::json_parse(R"("Aé€")");
    EXPECT_EQ(value.as_string(), "A\xC3\xA9\xE2\x82\xAC");

    // \u escapes, including an RFC 8259 surrogate pair for U+1F600.
    const lu::JsonValue escaped =
        lu::json_parse(R"("\u0041\u00e9\u20AC\uD83D\uDE00")");
    EXPECT_EQ(escaped.as_string(), "A\xC3\xA9\xE2\x82\xAC\xF0\x9F\x98\x80");

    // Unpaired surrogates are malformed, not silently emitted as CESU-8.
    EXPECT_THROW((void)lu::json_parse(R"("\uD83D")"), lu::ParseError);
    EXPECT_THROW((void)lu::json_parse(R"("\uD83Dx")"), lu::ParseError);
    EXPECT_THROW((void)lu::json_parse(R"("\uD83DA")"), lu::ParseError);
    EXPECT_THROW((void)lu::json_parse(R"("\uDE00")"), lu::ParseError);
}

TEST(JsonValue, DeeplyNestedInputIsAParseErrorNotAStackOverflow) {
    // One container per nesting level recurses the parser; a hostile line
    // must come back as ParseError instead of exhausting the stack.
    const std::string deep(100000, '[');
    EXPECT_THROW((void)lu::json_parse(deep), lu::ParseError);
    EXPECT_THROW((void)lu::json_parse(std::string(100000, '[') +
                                      std::string(100000, ']')),
                 lu::ParseError);

    // Reasonable nesting still parses.
    const lu::JsonValue ok = lu::json_parse(
        std::string(64, '[') + "1" + std::string(64, ']'));
    EXPECT_TRUE(ok.is_array());
}

TEST(JsonValue, AsIntRejectsOutOfRangeIntegers) {
    // 1e19 is integral but exceeds LLONG_MAX: the cast would be UB.
    EXPECT_THROW((void)lu::json_parse("1e19").as_int(), lu::InputError);
    EXPECT_THROW((void)lu::json_parse("-1e19").as_int(), lu::InputError);
    EXPECT_EQ(lu::json_parse("-9e18").as_int(), -9000000000000000000LL);
}

TEST(JsonValue, MalformedInputThrowsParseError) {
    EXPECT_THROW((void)lu::json_parse("{"), lu::ParseError);
    EXPECT_THROW((void)lu::json_parse("{\"a\":}"), lu::ParseError);
    EXPECT_THROW((void)lu::json_parse("[1,2"), lu::ParseError);
    EXPECT_THROW((void)lu::json_parse("\"unterminated"), lu::ParseError);
    EXPECT_THROW((void)lu::json_parse("nul"), lu::ParseError);
    EXPECT_THROW((void)lu::json_parse("{} trailing"), lu::ParseError);
    EXPECT_THROW((void)lu::json_parse("1.2.3"), lu::ParseError);
}

TEST(JsonValue, TypeMismatchThrowsInputError) {
    const lu::JsonValue root = lu::json_parse(R"({"a":1.5})");
    EXPECT_THROW((void)root.at("a").as_string(), lu::InputError);
    EXPECT_THROW((void)root.at("a").as_int(), lu::InputError); // non-integral
    EXPECT_THROW((void)root.at("missing"), lu::InputError);
}

TEST(JsonValue, DumpIsAFixedPointOfParse) {
    // Writer-produced text (format_double numbers, escaped strings) must
    // survive parse -> dump unchanged: the wire's losslessness rests on it.
    lu::JsonWriter writer;
    writer.begin_object();
    writer.kv("name", "gf2^16mult \"quoted\"\n");
    writer.kv("latency", 1.23456789012e-4);
    writer.kv("count", static_cast<std::size_t>(12345));
    writer.kv("flag", true);
    writer.key("null_field").null();
    writer.key("series").begin_array();
    for (const double v : {0.5, 6.02214076e23, -17.0}) writer.value(v);
    writer.end_array();
    writer.end_object();
    const std::string text = writer.str();

    const std::string once = lu::json_parse(text).dump();
    EXPECT_EQ(once, text);
    EXPECT_EQ(lu::json_parse(once).dump(), once);
}

TEST(JsonValue, WriterRawValueEmbedsDocument) {
    lu::JsonWriter inner;
    inner.begin_object();
    inner.kv("x", static_cast<long long>(1));
    inner.end_object();

    lu::JsonWriter outer;
    outer.begin_object();
    outer.key("embedded").raw_value(inner.str());
    outer.end_object();
    EXPECT_EQ(outer.str(), R"({"embedded":{"x":1}})");
}

// -------------------------------------------------------------------- env --

TEST(Env, FlagAndIntParsing) {
    ::setenv("LEQA_TEST_FLAG", "1", 1);
    EXPECT_TRUE(lu::env_flag("LEQA_TEST_FLAG"));
    ::setenv("LEQA_TEST_FLAG", "off", 1);
    EXPECT_FALSE(lu::env_flag("LEQA_TEST_FLAG"));
    ::unsetenv("LEQA_TEST_FLAG");
    EXPECT_FALSE(lu::env_flag("LEQA_TEST_FLAG"));

    ::setenv("LEQA_TEST_INT", "42", 1);
    EXPECT_EQ(lu::env_int("LEQA_TEST_INT", 7), 42);
    ::setenv("LEQA_TEST_INT", "not-a-number", 1);
    EXPECT_EQ(lu::env_int("LEQA_TEST_INT", 7), 7);
    ::unsetenv("LEQA_TEST_INT");
    EXPECT_EQ(lu::env_int("LEQA_TEST_INT", 7), 7);
}

// ---------------------------------------------------------------- logging --

TEST(Logging, LevelParsingAndFiltering) {
    EXPECT_EQ(lu::parse_log_level("Debug"), lu::LogLevel::Debug);
    EXPECT_EQ(lu::parse_log_level("WARN"), lu::LogLevel::Warn);
    EXPECT_THROW((void)lu::parse_log_level("loud"), lu::InputError);

    const auto previous = lu::log_level();
    lu::set_log_level(lu::LogLevel::Error);
    EXPECT_EQ(lu::log_level(), lu::LogLevel::Error);
    LEQA_LOG_INFO << "this should be filtered"; // must not crash
    lu::set_log_level(previous);
}

// --------------------------------------------------------------- stopwatch --

TEST(Stopwatch, MeasuresElapsedTime) {
    lu::Stopwatch sw;
    const double t0 = sw.seconds();
    EXPECT_GE(t0, 0.0);
    // A tight loop must consume some measurable time ordering.
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + static_cast<double>(i);
    EXPECT_GE(sw.seconds(), t0);
    sw.reset();
    EXPECT_LT(sw.seconds(), 1.0);
}

// ------------------------------------------------------------------ error --

TEST(Error, RequireMacrosThrowProperTypes) {
    EXPECT_THROW(LEQA_REQUIRE(false, "bad input"), lu::InputError);
    EXPECT_THROW(LEQA_CHECK(false, "bug"), lu::InternalError);
    EXPECT_NO_THROW(LEQA_REQUIRE(true, "ok"));
    EXPECT_EQ(lu::prefixed("ctx", "detail"), "ctx: detail");
    EXPECT_EQ(lu::prefixed("", "detail"), "detail");
}

// Tests for the NDJSON wire layer: request parse/serialize round trips for
// every op, response serialize/parse round trips (lossless, per the wire
// guarantee), error mapping for malformed lines, and end-to-end agreement
// between wire-transported results and direct Pipeline::run.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "report/report.h"
#include "service/service.h"
#include "service/wire.h"
#include "util/json_value.h"

namespace lw = leqa::service::wire;
namespace ls = leqa::service;
namespace lp = leqa::pipeline;
namespace lu = leqa::util;
namespace lf = leqa::fabric;

namespace {

lw::WireRequest parse_ok(const std::string& line) {
    const auto parsed = lw::parse_request(line);
    EXPECT_TRUE(parsed.ok()) << parsed.status().to_string();
    return parsed.value();
}

/// parse -> serialize -> parse -> serialize: both serializations and both
/// parses must agree (the request round-trip invariant).
void expect_request_roundtrip(const std::string& line) {
    const lw::WireRequest first = parse_ok(line);
    const std::string serialized = lw::serialize_request(first);
    const lw::WireRequest second = parse_ok(serialized);
    EXPECT_EQ(first, second) << serialized;
    EXPECT_EQ(lw::serialize_request(second), serialized);
}

} // namespace

// -------------------------------------------------------------- requests --

TEST(Wire, ParsesEveryRunModeOp) {
    for (const auto& [op_text, mode] :
         std::vector<std::pair<std::string, lp::RunMode>>{
             {"estimate", lp::RunMode::Estimate},
             {"map", lp::RunMode::Map},
             {"both", lp::RunMode::Both}}) {
        const lw::WireRequest request = parse_ok(
            R"({"id":7,"op":")" + op_text + R"(","source":"bench:ham3"})");
        EXPECT_EQ(request.id, 7u);
        EXPECT_EQ(request.source, "bench:ham3");
        EXPECT_EQ(lw::run_mode_of(request.op), mode);
    }
}

TEST(Wire, RequestRoundTripsAreLosslessForAllOps) {
    expect_request_roundtrip(R"({"id":1,"op":"estimate","source":"bench:ham3"})");
    expect_request_roundtrip(
        R"({"id":2,"op":"map","source":"a dir/c.qasm","priority":-3,)"
        R"("deadline_s":0.25,"label":"what if \"50x50\""})");
    expect_request_roundtrip(
        R"({"id":3,"op":"both","source":"bench:ham3","params":)"
        R"({"width":50,"height":49,"nc":3,"v":0.002,"t_move_us":80,"topology":"torus"}})");
    expect_request_roundtrip(
        R"({"id":4,"op":"sweep","source":"bench:ham3","axis":"fabric_sides",)"
        R"("values":[40,50,60]})");
    expect_request_roundtrip(
        R"({"id":5,"op":"sweep","source":"bench:ham3","axis":"v",)"
        R"("values":[0.001,0.01]})");
    expect_request_roundtrip(
        R"({"id":6,"op":"sweep","source":"bench:ham3","axis":"topology",)"
        R"("kinds":["grid","torus","line"]})");
    expect_request_roundtrip(
        R"({"id":7,"op":"calibrate","sources":["bench:ham3","x.qasm"],"apply":true})");
    expect_request_roundtrip(R"({"id":8,"op":"cancel","target":3})");
    expect_request_roundtrip(R"({"id":9,"op":"stats"})");
    expect_request_roundtrip(
        R"({"id":10,"op":"explore","source":"bench:ham3",)"
        R"("topologies":["grid","torus"],"sides":[40,50],"nc":[3,5],)"
        R"("v":[0.001,0.002],"threads":4})");
    expect_request_roundtrip(
        R"({"id":11,"op":"explore","source":"bench:ham3","sides":[40]})");
}

TEST(Wire, ExploreRequestsDecodeIntoSpecs) {
    const lw::WireRequest request = parse_ok(
        R"({"id":1,"op":"explore","source":"bench:ham3",)"
        R"("topologies":["grid","line"],"sides":[8,10],"nc":[3],)"
        R"("v":[0.001],"threads":2})");
    EXPECT_EQ(request.op, lw::WireRequest::Op::Explore);
    EXPECT_EQ(request.explore.topologies,
              (std::vector<lf::TopologyKind>{lf::TopologyKind::Grid,
                                             lf::TopologyKind::Line}));
    EXPECT_EQ(request.explore.sides, (std::vector<int>{8, 10}));
    EXPECT_EQ(request.explore.capacities, (std::vector<int>{3}));
    EXPECT_EQ(request.explore.speeds, (std::vector<double>{0.001}));
    EXPECT_EQ(request.explore.threads, 2u);

    // Defaults: threads 1, axes empty except the one given.
    const lw::WireRequest minimal =
        parse_ok(R"({"id":2,"op":"explore","source":"bench:ham3","nc":[3,5]})");
    EXPECT_EQ(minimal.explore.threads, 1u);
    EXPECT_TRUE(minimal.explore.topologies.empty());
    EXPECT_TRUE(minimal.explore.sides.empty());

    // Missing source / no axis at all / bad kinds are InvalidArgument.
    EXPECT_FALSE(lw::parse_request(R"({"id":3,"op":"explore","nc":[3]})").ok());
    EXPECT_FALSE(
        lw::parse_request(R"({"id":4,"op":"explore","source":"bench:ham3"})").ok());
    EXPECT_FALSE(lw::parse_request(
                     R"({"id":5,"op":"explore","source":"bench:ham3",)"
                     R"("topologies":["moebius"]})")
                     .ok());
    EXPECT_FALSE(lw::parse_request(
                     R"({"id":6,"op":"explore","source":"bench:ham3",)"
                     R"("sides":[40.5]})")
                     .ok());
    // The daemon never spawns an unbounded thread count off one line.
    EXPECT_FALSE(lw::parse_request(
                     R"({"id":7,"op":"explore","source":"bench:ham3",)"
                     R"("sides":[40],"threads":20000})")
                     .ok());
}

TEST(Wire, ParamsPatchAppliesOverBase) {
    const lw::WireRequest request = parse_ok(
        R"({"id":1,"op":"estimate","source":"bench:ham3",)"
        R"("params":{"width":50,"topology":"torus"}})");
    lf::PhysicalParams base;
    const lf::PhysicalParams patched = request.params.apply(base);
    EXPECT_EQ(patched.width, 50);
    EXPECT_EQ(patched.topology, lf::TopologyKind::Torus);
    EXPECT_EQ(patched.height, base.height); // untouched fields keep defaults
    EXPECT_EQ(patched.nc, base.nc);
    EXPECT_FALSE(request.params.empty());
    EXPECT_TRUE(lw::ParamsPatch{}.empty());
}

TEST(Wire, MalformedLinesComeBackAsStatusesNotThrows) {
    // Broken JSON -> ParseError.
    const auto broken = lw::parse_request("{\"id\":1,");
    ASSERT_FALSE(broken.ok());
    EXPECT_EQ(broken.status().code(), lu::StatusCode::ParseError);
    EXPECT_EQ(broken.status().origin(), "wire");

    // Structurally valid JSON with bad fields -> InvalidArgument.
    for (const char* line : {
             R"({"op":"estimate","source":"bench:ham3"})",          // no id
             R"({"id":1})",                                          // no op
             R"({"id":1,"op":"frobnicate"})",                        // bad op
             R"({"id":1,"op":"estimate"})",                          // no source
             R"({"id":1,"op":"estimate","source":""})",              // empty source
             R"({"id":-2,"op":"stats"})",                            // negative id
             R"({"id":0,"op":"stats"})",                             // 0 is reserved
             R"({"id":1,"op":"sweep","source":"x"})",                // no axis
             R"({"id":1,"op":"sweep","source":"x","axis":"bogus"})", // bad axis
             R"({"id":1,"op":"sweep","source":"x","axis":"nc","values":[]})",
             R"({"id":1,"op":"cancel"})",                            // no target
             R"({"id":1,"op":"calibrate","sources":[]})",            // empty sources
             R"({"id":1,"op":"estimate","source":"x","deadline_s":0})",
             R"({"id":1,"op":"estimate","source":"x","params":{"bogus":1}})",
             // ids beyond 2^53 lose double precision: reject, don't round.
             R"({"id":9007199254740993,"op":"stats"})",
             R"({"id":1,"op":"cancel","target":9007199254740994})",
             // int fields must fit an int, not silently wrap.
             R"({"id":1,"op":"estimate","source":"x","params":{"width":4294967346}})",
             R"({"id":1,"op":"estimate","source":"x","priority":2147483648})",
             R"([1,2,3])",                                           // not an object
         }) {
        const auto parsed = lw::parse_request(line);
        ASSERT_FALSE(parsed.ok()) << line;
        EXPECT_EQ(parsed.status().code(), lu::StatusCode::InvalidArgument) << line;
    }
}

TEST(Wire, ExtractIdRecoversCorrelationFromRejectedLines) {
    EXPECT_EQ(lw::extract_id(R"({"id":41,"op":"frobnicate"})"), 41u);
    EXPECT_EQ(lw::extract_id("{{{"), 0u);
    EXPECT_EQ(lw::extract_id(R"({"op":"stats"})"), 0u);
}

TEST(Wire, SubmitOptionsCarrySchedulingFields) {
    const lw::WireRequest request = parse_ok(
        R"({"id":1,"op":"estimate","source":"x","priority":9,)"
        R"("deadline_s":1.5,"label":"hot"})");
    const ls::SubmitOptions options = lw::submit_options(request);
    EXPECT_EQ(options.priority, 9);
    ASSERT_TRUE(options.deadline_s.has_value());
    EXPECT_DOUBLE_EQ(*options.deadline_s, 1.5);
    EXPECT_EQ(options.label, "hot");
}

// ------------------------------------------------------------- responses --

TEST(Wire, SuccessResponsesRoundTripLosslesslyForAllRunModes) {
    lp::Pipeline pipe;
    for (const auto mode :
         {lp::RunMode::Estimate, lp::RunMode::Map, lp::RunMode::Both}) {
        lp::EstimationRequest request(lp::CircuitSource::from_bench("ham3"), mode);
        const ls::JobResult result{ls::JobOutput{pipe.run(request)}};
        const std::string line = lw::serialize_result(11, result);

        const auto parsed = lw::parse_response(line);
        ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
        EXPECT_EQ(parsed.value().id, 11u);
        EXPECT_TRUE(parsed.value().status.ok());
        // Lossless: re-serializing the parsed response reproduces the line.
        EXPECT_EQ(lw::serialize_response(parsed.value()), line);
    }
}

TEST(Wire, ErrorResponsesRoundTripLosslessly) {
    const lu::Status status(lu::StatusCode::NotFound, "unknown bench \"x\"", "resolve");
    const std::string line = lw::serialize_error(4, status);
    EXPECT_NE(line.find("\"error\":{\"code\":\"NotFound\""), std::string::npos);

    const auto parsed = lw::parse_response(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
    EXPECT_EQ(parsed.value().id, 4u);
    EXPECT_EQ(parsed.value().status, status);
    EXPECT_EQ(lw::serialize_response(parsed.value()), line);

    // An originless error round-trips too.
    const lu::Status bare(lu::StatusCode::Internal, "boom");
    const auto reparsed = lw::parse_response(lw::serialize_error(9, bare));
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed.value().status, bare);

    // id 0 is invalid in requests but valid in responses: it is what the
    // daemon answers for lines whose own id could not be recovered.
    const auto fallback = lw::parse_response(lw::serialize_error(0, bare));
    ASSERT_TRUE(fallback.ok());
    EXPECT_EQ(fallback.value().id, 0u);
}

TEST(Wire, WireResultIsBitIdenticalToDirectPipelineRun) {
    // The acceptance bar: a result transported over the wire carries the
    // exact estimate document a direct Pipeline::run caller serializes
    // (stage wall-times aside, which are nondeterministic by nature).
    lp::Pipeline direct;
    lp::EstimationRequest request(lp::CircuitSource::from_bench("8bitadder"));
    const lp::EstimationResult expected = direct.run(request);

    ls::Service service;
    const ls::JobResult& result =
        service.submit("bench:8bitadder", lp::RunMode::Estimate).wait();
    ASSERT_TRUE(result.ok()) << result.status().to_string();

    const auto transported =
        lw::parse_response(lw::serialize_result(1, result));
    ASSERT_TRUE(transported.ok());
    const lu::JsonValue direct_doc =
        lu::json_parse(leqa::report::result_to_json(expected));
    EXPECT_EQ(transported.value().result.at("estimate").dump(),
              direct_doc.at("estimate").dump());
    EXPECT_EQ(transported.value().result.at("circuit").dump(),
              direct_doc.at("circuit").dump());
    EXPECT_EQ(transported.value().result.at("fabric").dump(),
              direct_doc.at("fabric").dump());
}

TEST(Wire, SweepAndCalibrationPayloadsSerialize) {
    ls::Service service;
    ls::SweepRequest sweep;
    sweep.source = "bench:ham3";
    sweep.axis = ls::SweepAxis::Topology;
    sweep.kinds = {lf::TopologyKind::Grid, lf::TopologyKind::Torus};
    const ls::JobResult& result = service.submit_sweep(sweep).wait();
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    const std::string line = lw::serialize_result(2, result);
    const auto parsed = lw::parse_response(line);
    ASSERT_TRUE(parsed.ok());
    const lu::JsonValue& payload = parsed.value().result;
    ASSERT_NE(payload.find("sweep"), nullptr);
    EXPECT_EQ(payload.at("sweep").at("points").items().size(), 2u);
    EXPECT_EQ(lw::serialize_response(parsed.value()), line);

    ls::CalibrationRequest calibrate;
    calibrate.sources = {"bench:ham3"};
    const ls::JobResult& fit = service.submit_calibration(calibrate).wait();
    ASSERT_TRUE(fit.ok()) << fit.status().to_string();
    const auto fit_parsed = lw::parse_response(lw::serialize_result(3, fit));
    ASSERT_TRUE(fit_parsed.ok());
    EXPECT_GT(fit_parsed.value().result.at("calibration").at("v").as_number(), 0.0);
}

TEST(Wire, ExplorePayloadSerializes) {
    ls::Service service;
    ls::ExploreRequest explore;
    explore.source = "bench:ham3";
    explore.spec.sides = {8, 10};
    explore.spec.capacities = {3, 5};
    const ls::JobResult& result = service.submit_explore(explore).wait();
    ASSERT_TRUE(result.ok()) << result.status().to_string();
    const std::string line = lw::serialize_result(4, result);
    const auto parsed = lw::parse_response(line);
    ASSERT_TRUE(parsed.ok());
    const lu::JsonValue& payload = parsed.value().result;
    ASSERT_NE(payload.find("exploration"), nullptr);
    const lu::JsonValue& exploration = payload.at("exploration");
    EXPECT_EQ(exploration.at("points").items().size(), 4u);
    EXPECT_EQ(exploration.at("points_total").as_int(), 4);
    EXPECT_GE(exploration.at("pareto_front").items().size(), 1u);
    EXPECT_EQ(exploration.at("best_per_topology").items().size(), 1u);
    EXPECT_EQ(lw::serialize_response(parsed.value()), line);
}

TEST(Wire, CancelAckAndStatsSerialize) {
    const std::string ack = lw::serialize_cancel_ack(5, 2, true);
    const auto parsed = lw::parse_response(ack);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value().id, 5u);
    EXPECT_EQ(parsed.value().result.at("target").as_int(), 2);
    EXPECT_TRUE(parsed.value().result.at("cancelled").as_bool());

    ls::Service service;
    (void)service.submit("bench:ham3", lp::RunMode::Estimate).wait();
    const std::string stats_line = lw::serialize_stats(6, service.stats());
    const auto stats = lw::parse_response(stats_line);
    ASSERT_TRUE(stats.ok());
    const lu::JsonValue& object = stats.value().result.at("stats");
    EXPECT_EQ(object.at("submitted").as_int(), 1);
    EXPECT_EQ(object.at("rejected").as_int(), 0);
    EXPECT_EQ(object.at("cache").at("circuit_misses").as_int(), 1);
    // Both latency summaries carry the full percentile ladder, p999
    // included (it saturates to the max on small windows).
    for (const char* summary : {"queue_wait", "service_time"}) {
        const lu::JsonValue& window = object.at(summary);
        ASSERT_NE(window.find("p999_s"), nullptr) << summary;
        EXPECT_GE(window.at("p999_s").as_number(), window.at("p99_s").as_number());
        EXPECT_GE(window.at("max_s").as_number(), window.at("p999_s").as_number());
    }
}

TEST(Wire, MalformedResponsesAreStatuses) {
    EXPECT_FALSE(lw::parse_response("nonsense").ok());
    EXPECT_FALSE(lw::parse_response(R"({"id":1})").ok());
    EXPECT_FALSE(
        lw::parse_response(R"({"id":1,"error":{"code":"Nope","message":"x"}})").ok());
    EXPECT_FALSE(
        lw::parse_response(R"({"id":1,"error":{"code":"Ok","message":"x"}})").ok());
}
